package interp

import (
	"jumpstart/internal/bytecode"
	"jumpstart/internal/object"
	"jumpstart/internal/value"
)

// MultiTracer fans every event out to each tracer in order. The server
// uses it to run profile collection and cost accounting simultaneously
// (a profiling server still serves traffic).
type MultiTracer []Tracer

var _ Tracer = MultiTracer{}

// OnEnter implements Tracer.
func (m MultiTracer) OnEnter(fn *bytecode.Function) {
	for _, t := range m {
		t.OnEnter(fn)
	}
}

// OnBlock implements Tracer.
func (m MultiTracer) OnBlock(fn *bytecode.Function, block int) {
	for _, t := range m {
		t.OnBlock(fn, block)
	}
}

// OnCallSite implements Tracer.
func (m MultiTracer) OnCallSite(fn *bytecode.Function, pc int, callee *bytecode.Function) {
	for _, t := range m {
		t.OnCallSite(fn, pc, callee)
	}
}

// OnReturn implements Tracer.
func (m MultiTracer) OnReturn(fn *bytecode.Function) {
	for _, t := range m {
		t.OnReturn(fn)
	}
}

// OnNewObj implements Tracer.
func (m MultiTracer) OnNewObj(obj *object.Object) {
	for _, t := range m {
		t.OnNewObj(obj)
	}
}

// OnPropAccess implements Tracer.
func (m MultiTracer) OnPropAccess(obj *object.Object, slot int, write bool) {
	for _, t := range m {
		t.OnPropAccess(obj, slot, write)
	}
}

// OnOpTypes implements Tracer.
func (m MultiTracer) OnOpTypes(fn *bytecode.Function, pc int, a, b value.Kind) {
	for _, t := range m {
		t.OnOpTypes(fn, pc, a, b)
	}
}
