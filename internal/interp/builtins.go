package interp

import (
	"fmt"
	"math"

	"jumpstart/internal/bytecode"
	"jumpstart/internal/value"
)

// builtinError reports a bad builtin invocation.
func builtinError(b bytecode.Builtin, format string, args ...interface{}) error {
	return &Fault{Msg: fmt.Sprintf("%s: %s", b, fmt.Sprintf(format, args...))}
}

// builtin dispatches an intrinsic call. args aliases the operand stack
// and must not be retained.
func (ip *Interp) builtin(b bytecode.Builtin, args []value.Value) (value.Value, error) {
	need := func(n int) error {
		if len(args) != n {
			return builtinError(b, "expects %d args, got %d", n, len(args))
		}
		return nil
	}
	switch b {
	case bytecode.BPrint:
		if ip.out != nil {
			for _, a := range args {
				fmt.Fprint(ip.out, a.ToStr())
			}
			fmt.Fprintln(ip.out)
		}
		return value.Null, nil

	case bytecode.BLen:
		if err := need(1); err != nil {
			return value.Null, err
		}
		switch args[0].Kind() {
		case value.KindArr:
			return value.Int(int64(args[0].AsArr().Len())), nil
		case value.KindStr:
			return value.Int(int64(len(args[0].AsStr()))), nil
		default:
			return value.Null, builtinError(b, "wants array or string, got %s", args[0].Kind())
		}

	case bytecode.BPush:
		if err := need(2); err != nil {
			return value.Null, err
		}
		if args[0].Kind() != value.KindArr {
			return value.Null, builtinError(b, "wants array, got %s", args[0].Kind())
		}
		args[0].AsArr().Append(args[1])
		return args[0], nil

	case bytecode.BKeys:
		if err := need(1); err != nil {
			return value.Null, err
		}
		if args[0].Kind() != value.KindArr {
			return value.Null, builtinError(b, "wants array, got %s", args[0].Kind())
		}
		out := value.NewArray(args[0].AsArr().Len())
		for _, k := range args[0].AsArr().Keys() {
			out.Append(k)
		}
		return value.Arr(out), nil

	case bytecode.BVals:
		if err := need(1); err != nil {
			return value.Null, err
		}
		if args[0].Kind() != value.KindArr {
			return value.Null, builtinError(b, "wants array, got %s", args[0].Kind())
		}
		out := value.NewArray(args[0].AsArr().Len())
		for _, v := range args[0].AsArr().Values() {
			out.Append(v)
		}
		return value.Arr(out), nil

	case bytecode.BSqrt:
		if err := need(1); err != nil {
			return value.Null, err
		}
		return value.Float(math.Sqrt(args[0].ToFloat())), nil

	case bytecode.BAbs:
		if err := need(1); err != nil {
			return value.Null, err
		}
		if args[0].Kind() == value.KindInt {
			i := args[0].AsInt()
			if i < 0 && i != math.MinInt64 {
				return value.Int(-i), nil
			}
			if i >= 0 {
				return value.Int(i), nil
			}
		}
		return value.Float(math.Abs(args[0].ToFloat())), nil

	case bytecode.BMin, bytecode.BMax:
		if len(args) < 1 {
			return value.Null, builtinError(b, "expects at least 1 arg")
		}
		best := args[0]
		for _, a := range args[1:] {
			c := value.Compare(a, best)
			if (b == bytecode.BMin && c < 0) || (b == bytecode.BMax && c > 0) {
				best = a
			}
		}
		return best, nil

	case bytecode.BPow:
		if err := need(2); err != nil {
			return value.Null, err
		}
		if args[0].Kind() == value.KindInt && args[1].Kind() == value.KindInt && args[1].AsInt() >= 0 {
			base, exp := args[0].AsInt(), args[1].AsInt()
			result := int64(1)
			overflow := false
			for i := int64(0); i < exp; i++ {
				next := result * base
				if base != 0 && next/base != result {
					overflow = true
					break
				}
				result = next
			}
			if !overflow {
				return value.Int(result), nil
			}
		}
		return value.Float(math.Pow(args[0].ToFloat(), args[1].ToFloat())), nil

	case bytecode.BFloor:
		if err := need(1); err != nil {
			return value.Null, err
		}
		return value.Float(math.Floor(args[0].ToFloat())), nil

	case bytecode.BCeil:
		if err := need(1); err != nil {
			return value.Null, err
		}
		return value.Float(math.Ceil(args[0].ToFloat())), nil

	case bytecode.BStrlen:
		if err := need(1); err != nil {
			return value.Null, err
		}
		return value.Int(int64(len(args[0].ToStr()))), nil

	case bytecode.BSubstr:
		if err := need(3); err != nil {
			return value.Null, err
		}
		s := args[0].ToStr()
		start := int(args[1].ToInt())
		length := int(args[2].ToInt())
		if start < 0 {
			start = len(s) + start
		}
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			return value.Str(""), nil
		}
		end := start + length
		if length < 0 {
			end = len(s) + length
		}
		if end > len(s) {
			end = len(s)
		}
		if end < start {
			return value.Str(""), nil
		}
		return value.Str(s[start:end]), nil

	case bytecode.BOrd:
		if err := need(1); err != nil {
			return value.Null, err
		}
		s := args[0].ToStr()
		if s == "" {
			return value.Int(0), nil
		}
		return value.Int(int64(s[0])), nil

	case bytecode.BChr:
		if err := need(1); err != nil {
			return value.Null, err
		}
		return value.Str(string([]byte{byte(args[0].ToInt() & 0xff)})), nil

	case bytecode.BIntVal:
		if err := need(1); err != nil {
			return value.Null, err
		}
		return value.Int(args[0].ToInt()), nil

	case bytecode.BFloatVal:
		if err := need(1); err != nil {
			return value.Null, err
		}
		return value.Float(args[0].ToFloat()), nil

	case bytecode.BStrVal:
		if err := need(1); err != nil {
			return value.Null, err
		}
		return value.Str(args[0].ToStr()), nil

	case bytecode.BIsNull:
		if err := need(1); err != nil {
			return value.Null, err
		}
		return value.Bool(args[0].IsNull()), nil

	case bytecode.BIsInt:
		if err := need(1); err != nil {
			return value.Null, err
		}
		return value.Bool(args[0].Kind() == value.KindInt), nil

	case bytecode.BIsStr:
		if err := need(1); err != nil {
			return value.Null, err
		}
		return value.Bool(args[0].Kind() == value.KindStr), nil

	case bytecode.BIsArr:
		if err := need(1); err != nil {
			return value.Null, err
		}
		return value.Bool(args[0].Kind() == value.KindArr), nil

	case bytecode.BIsObj:
		if err := need(1); err != nil {
			return value.Null, err
		}
		return value.Bool(args[0].Kind() == value.KindObj), nil

	case bytecode.BHash:
		if err := need(1); err != nil {
			return value.Null, err
		}
		// FNV-1a, masked to keep results positive int64s so workload
		// code can take modulo without sign surprises.
		h := uint64(14695981039346656037)
		for _, c := range []byte(args[0].ToStr()) {
			h ^= uint64(c)
			h *= 1099511628211
		}
		return value.Int(int64(h & 0x7fffffffffffffff)), nil

	default:
		return value.Null, builtinError(b, "unknown builtin")
	}
}
