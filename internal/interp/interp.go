// Package interp implements the MiniHack bytecode interpreter.
//
// The interpreter is the VM's tier-0 engine and, as in HHVM, its last
// resort: every function can always execute here regardless of JIT
// state. It exposes a Tracer interface through which the profiling
// tier collects block counters, type feedback, call-target profiles
// and property-access counters, and through which the simulated JIT
// charges translation costs and feeds the micro-architecture model.
// With a nil Tracer the interpreter runs at full (host) speed.
package interp

import (
	"errors"
	"fmt"
	"io"

	"jumpstart/internal/bytecode"
	"jumpstart/internal/object"
	"jumpstart/internal/value"
)

// Tracer observes execution. All methods are called synchronously on
// the interpreter goroutine; implementations must be cheap.
type Tracer interface {
	// OnEnter fires when a MiniHack function activation begins.
	OnEnter(fn *bytecode.Function)
	// OnBlock fires when control enters a bytecode basic block.
	OnBlock(fn *bytecode.Function, block int)
	// OnCallSite fires before a call executes, identifying the
	// resolved callee (method dispatch included).
	OnCallSite(fn *bytecode.Function, pc int, callee *bytecode.Function)
	// OnReturn fires when an activation ends (normally or via fault).
	OnReturn(fn *bytecode.Function)
	// OnNewObj fires after object allocation.
	OnNewObj(obj *object.Object)
	// OnPropAccess fires on property reads/writes with the resolved
	// physical slot.
	OnPropAccess(obj *object.Object, slot int, write bool)
	// OnOpTypes fires at dynamically-typed operations with the operand
	// kinds observed (b is KindNull for unary sites).
	OnOpTypes(fn *bytecode.Function, pc int, a, b value.Kind)
}

// Fault is a MiniHack runtime error carrying a VM-level stack trace.
type Fault struct {
	Msg   string
	Stack []string // innermost first: "func @pc"
}

func (f *Fault) Error() string {
	return "interp: fault: " + f.Msg
}

// ErrFuel is returned when execution exceeds the configured step
// budget (runaway-loop protection for generated workloads).
var ErrFuel = errors.New("interp: execution budget exhausted")

// Config parameterizes an Interp.
type Config struct {
	// Out receives builtin print output. Nil discards it.
	Out io.Writer
	// Tracer observes execution. Nil disables tracing.
	Tracer Tracer
	// MaxSteps bounds total bytecode instructions per entry call
	// (0 = 100M).
	MaxSteps int64
	// MaxDepth bounds call nesting (0 = 256).
	MaxDepth int
}

// Interp executes bytecode against a runtime class registry.
type Interp struct {
	prog   *bytecode.Program
	reg    *object.Registry
	out    io.Writer
	tracer Tracer
	fuel   int64
	max    int64
	depth  int
	maxDep int

	bsCache map[*bytecode.Function][]int32
}

// New creates an interpreter for prog/reg.
func New(prog *bytecode.Program, reg *object.Registry, cfg Config) *Interp {
	max := cfg.MaxSteps
	if max == 0 {
		max = 100_000_000
	}
	maxDep := cfg.MaxDepth
	if maxDep == 0 {
		maxDep = 256
	}
	return &Interp{
		prog:   prog,
		reg:    reg,
		out:    cfg.Out,
		tracer: cfg.Tracer,
		max:    max,
		maxDep: maxDep,
	}
}

// Registry returns the interpreter's class registry.
func (ip *Interp) Registry() *object.Registry { return ip.reg }

// Program returns the linked program.
func (ip *Interp) Program() *bytecode.Program { return ip.prog }

// SetTracer swaps the tracer (used when a server transitions between
// profiling and steady-state execution).
func (ip *Interp) SetTracer(t Tracer) { ip.tracer = t }

// CallByName invokes a free function by name from outside the VM.
// The step budget resets per entry call.
func (ip *Interp) CallByName(name string, args ...value.Value) (value.Value, error) {
	fn, ok := ip.prog.FuncByName(name)
	if !ok {
		return value.Null, fmt.Errorf("interp: undefined function %q", name)
	}
	ip.fuel = ip.max
	return ip.call(fn, nil, args)
}

// Call invokes fn directly (used by the server's request dispatcher).
func (ip *Interp) Call(fn *bytecode.Function, args ...value.Value) (value.Value, error) {
	ip.fuel = ip.max
	return ip.call(fn, nil, args)
}

func (ip *Interp) fault(fn *bytecode.Function, pc int, format string, args ...interface{}) error {
	return &Fault{
		Msg:   fmt.Sprintf(format, args...),
		Stack: []string{fmt.Sprintf("%s @%d", fn.Name, pc)},
	}
}

type iterState struct {
	entries []value.Entry
	idx     int
}

// call runs one activation of fn. this is nil for free functions.
func (ip *Interp) call(fn *bytecode.Function, this *object.Object, args []value.Value) (value.Value, error) {
	if len(args) != fn.NumParams {
		return value.Null, ip.fault(fn, 0, "%s expects %d args, got %d",
			fn.Name, fn.NumParams, len(args))
	}
	if ip.depth >= ip.maxDep {
		return value.Null, ip.fault(fn, 0, "stack overflow (depth %d)", ip.depth)
	}
	ip.depth++
	defer func() { ip.depth-- }()

	locals := make([]value.Value, fn.NumLocals)
	copy(locals, args)
	stack := make([]value.Value, 0, 16)
	var iters []iterState
	if fn.NumIters > 0 {
		iters = make([]iterState, fn.NumIters)
	}

	tr := ip.tracer
	if tr != nil {
		tr.OnEnter(fn)
		defer tr.OnReturn(fn)
	}

	// Block tracking: blockStart[pc] = block id + 1, 0 otherwise.
	var blockStart []int32
	if tr != nil {
		blockStart = ip.blockStarts(fn)
	}

	push := func(v value.Value) { stack = append(stack, v) }
	pop := func() value.Value {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}

	code := fn.Code
	pc := 0
	for {
		if ip.fuel <= 0 {
			return value.Null, ErrFuel
		}
		ip.fuel--
		if tr != nil && blockStart[pc] != 0 {
			tr.OnBlock(fn, int(blockStart[pc]-1))
		}
		in := code[pc]
		switch in.Op {
		case bytecode.OpNop:
			// nothing

		case bytecode.OpNull:
			push(value.Null)
		case bytecode.OpTrue:
			push(value.Bool(true))
		case bytecode.OpFalse:
			push(value.Bool(false))
		case bytecode.OpInt:
			push(value.Int(int64(in.A)))
		case bytecode.OpLit:
			push(fn.Unit.Literal(in.A))
		case bytecode.OpDup:
			push(stack[len(stack)-1])
		case bytecode.OpPopC:
			pop()

		case bytecode.OpCGetL:
			push(locals[in.A])
		case bytecode.OpSetL:
			locals[in.A] = stack[len(stack)-1]
		case bytecode.OpPushL:
			push(locals[in.A])
			locals[in.A] = value.Null

		case bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul, bytecode.OpDiv, bytecode.OpMod:
			b := pop()
			a := pop()
			if tr != nil {
				tr.OnOpTypes(fn, pc, a.Kind(), b.Kind())
			}
			v, err := arith(in.Op, a, b)
			if err != nil {
				return value.Null, ip.fault(fn, pc, "%v", err)
			}
			push(v)

		case bytecode.OpConcat:
			b := pop()
			a := pop()
			if tr != nil {
				tr.OnOpTypes(fn, pc, a.Kind(), b.Kind())
			}
			push(value.Concat(a, b))

		case bytecode.OpNeg:
			a := pop()
			if tr != nil {
				tr.OnOpTypes(fn, pc, a.Kind(), value.KindNull)
			}
			v, err := value.Neg(a)
			if err != nil {
				return value.Null, ip.fault(fn, pc, "%v", err)
			}
			push(v)
		case bytecode.OpNot:
			push(value.Bool(!pop().Truthy()))

		case bytecode.OpBitAnd:
			b := pop()
			push(value.BitAnd(pop(), b))
		case bytecode.OpBitOr:
			b := pop()
			push(value.BitOr(pop(), b))
		case bytecode.OpBitXor:
			b := pop()
			push(value.BitXor(pop(), b))
		case bytecode.OpShl:
			b := pop()
			push(value.Shl(pop(), b))
		case bytecode.OpShr:
			b := pop()
			push(value.Shr(pop(), b))

		case bytecode.OpCmpEq, bytecode.OpCmpNeq, bytecode.OpCmpSame,
			bytecode.OpCmpNSame, bytecode.OpCmpLt, bytecode.OpCmpLte,
			bytecode.OpCmpGt, bytecode.OpCmpGte:
			b := pop()
			a := pop()
			if tr != nil {
				tr.OnOpTypes(fn, pc, a.Kind(), b.Kind())
			}
			push(value.Bool(compare(in.Op, a, b)))

		case bytecode.OpJmp:
			pc = int(in.A)
			continue
		case bytecode.OpJmpZ:
			if !pop().Truthy() {
				pc = int(in.A)
				continue
			}
		case bytecode.OpJmpNZ:
			if pop().Truthy() {
				pc = int(in.A)
				continue
			}

		case bytecode.OpRet:
			return pop(), nil
		case bytecode.OpFatal:
			return value.Null, ip.fault(fn, pc, "fatal: %s", pop().ToStr())

		case bytecode.OpFCallD:
			callee := ip.prog.Funcs[in.A]
			argc := int(in.B)
			cargs := make([]value.Value, argc)
			copy(cargs, stack[len(stack)-argc:])
			stack = stack[:len(stack)-argc]
			if tr != nil {
				tr.OnCallSite(fn, pc, callee)
			}
			ret, err := ip.call(callee, nil, cargs)
			if err != nil {
				return value.Null, ip.pushFrame(err, fn, pc)
			}
			push(ret)

		case bytecode.OpFCall:
			name := fn.Unit.Literal(in.A).AsStr()
			return value.Null, ip.fault(fn, pc, "undefined function %q", name)

		case bytecode.OpFCallM:
			argc := int(in.B)
			cargs := make([]value.Value, argc)
			copy(cargs, stack[len(stack)-argc:])
			stack = stack[:len(stack)-argc]
			recv := pop()
			if recv.Kind() != value.KindObj {
				return value.Null, ip.fault(fn, pc, "method call on %s", recv.Kind())
			}
			obj := recv.AsObj().(*object.Object)
			name := fn.Unit.Literal(in.A).AsStr()
			mid, ok := obj.Class().Meta.LookupMethod(name)
			if !ok {
				return value.Null, ip.fault(fn, pc, "class %s has no method %q",
					obj.ClassName(), name)
			}
			callee := ip.prog.Funcs[mid]
			if argc != callee.NumParams {
				return value.Null, ip.fault(fn, pc, "%s expects %d args, got %d",
					callee.Name, callee.NumParams, argc)
			}
			if tr != nil {
				tr.OnCallSite(fn, pc, callee)
			}
			ret, err := ip.call(callee, obj, cargs)
			if err != nil {
				return value.Null, ip.pushFrame(err, fn, pc)
			}
			push(ret)

		case bytecode.OpNewObj:
			argc := int(in.B)
			cargs := make([]value.Value, argc)
			copy(cargs, stack[len(stack)-argc:])
			stack = stack[:len(stack)-argc]
			rc := ip.reg.Class(bytecode.ClassID(in.A))
			obj := ip.reg.Heap().NewObject(rc)
			if tr != nil {
				tr.OnNewObj(obj)
			}
			if ctorID, ok := rc.Meta.LookupMethod(ctorName); ok {
				ctor := ip.prog.Funcs[ctorID]
				if argc != ctor.NumParams {
					return value.Null, ip.fault(fn, pc, "%s expects %d args, got %d",
						ctor.Name, ctor.NumParams, argc)
				}
				if tr != nil {
					tr.OnCallSite(fn, pc, ctor)
				}
				if _, err := ip.call(ctor, obj, cargs); err != nil {
					return value.Null, ip.pushFrame(err, fn, pc)
				}
			} else if argc != 0 {
				return value.Null, ip.fault(fn, pc, "class %s has no constructor", rc.Name())
			}
			push(value.Object(obj))

		case bytecode.OpNewObjL:
			name := fn.Unit.Literal(in.A).AsStr()
			return value.Null, ip.fault(fn, pc, "undefined class %q", name)

		case bytecode.OpBuiltin:
			argc := int(in.B)
			cargs := stack[len(stack)-argc:]
			ret, err := ip.builtin(bytecode.Builtin(in.A), cargs)
			stack = stack[:len(stack)-argc]
			if err != nil {
				return value.Null, ip.pushFrame(err, fn, pc)
			}
			push(ret)

		case bytecode.OpThis:
			if this == nil {
				return value.Null, ip.fault(fn, pc, "'this' with no receiver")
			}
			push(value.Object(this))

		case bytecode.OpPropGet:
			base := pop()
			if base.Kind() != value.KindObj {
				return value.Null, ip.fault(fn, pc, "property access on %s", base.Kind())
			}
			obj := base.AsObj().(*object.Object)
			name := fn.Unit.Literal(in.A).AsStr()
			v, slot, ok := obj.GetProp(name)
			if !ok {
				return value.Null, ip.fault(fn, pc, "class %s has no property %q",
					obj.ClassName(), name)
			}
			if tr != nil {
				tr.OnPropAccess(obj, slot, false)
			}
			push(v)

		case bytecode.OpPropSet:
			v := pop()
			base := pop()
			if base.Kind() != value.KindObj {
				return value.Null, ip.fault(fn, pc, "property write on %s", base.Kind())
			}
			obj := base.AsObj().(*object.Object)
			name := fn.Unit.Literal(in.A).AsStr()
			slot, ok := obj.SetProp(name, v)
			if !ok {
				return value.Null, ip.fault(fn, pc, "class %s has no property %q",
					obj.ClassName(), name)
			}
			if tr != nil {
				tr.OnPropAccess(obj, slot, true)
			}
			push(v)

		case bytecode.OpNewVec:
			n := int(in.A)
			a := value.NewArray(n)
			for i := len(stack) - n; i < len(stack); i++ {
				a.Append(stack[i])
			}
			stack = stack[:len(stack)-n]
			push(value.Arr(a))

		case bytecode.OpNewDict:
			n := int(in.A)
			a := value.NewArray(n)
			base := len(stack) - 2*n
			for i := 0; i < n; i++ {
				a.Set(stack[base+2*i], stack[base+2*i+1])
			}
			stack = stack[:base]
			push(value.Arr(a))

		case bytecode.OpIdxGet:
			key := pop()
			base := pop()
			if base.Kind() != value.KindArr {
				return value.Null, ip.fault(fn, pc, "index read on %s", base.Kind())
			}
			v, _ := base.AsArr().Get(key) // absent key yields null, PHP-style
			push(v)

		case bytecode.OpIdxSet:
			v := pop()
			key := pop()
			base := pop()
			if base.Kind() != value.KindArr {
				return value.Null, ip.fault(fn, pc, "index write on %s", base.Kind())
			}
			base.AsArr().Set(key, v)
			push(v)

		case bytecode.OpIdxApp:
			v := pop()
			base := pop()
			if base.Kind() != value.KindArr {
				return value.Null, ip.fault(fn, pc, "append on %s", base.Kind())
			}
			base.AsArr().Append(v)
			push(v)

		case bytecode.OpIterInit:
			seq := pop()
			if seq.Kind() != value.KindArr {
				return value.Null, ip.fault(fn, pc, "foreach over %s", seq.Kind())
			}
			arr := seq.AsArr()
			entries := make([]value.Entry, arr.Len())
			for i := 0; i < arr.Len(); i++ {
				entries[i] = arr.At(i)
			}
			iters[in.A] = iterState{entries: entries}
			if len(entries) == 0 {
				pc = int(in.B)
				continue
			}

		case bytecode.OpIterNext:
			it := &iters[in.A]
			it.idx++
			if it.idx < len(it.entries) {
				pc = int(in.B)
				continue
			}
			it.entries = nil // release

		case bytecode.OpIterKey:
			it := &iters[in.A]
			e := it.entries[it.idx]
			if e.IsStr {
				push(value.Str(e.StrKey))
			} else {
				push(value.Int(e.IntKey))
			}

		case bytecode.OpIterVal:
			push(iters[in.A].entries[iters[in.A].idx].Val)

		default:
			return value.Null, ip.fault(fn, pc, "unimplemented opcode %v", in.Op)
		}
		pc++
	}
}

// ctorName matches hackc.CtorName; duplicated to avoid a dependency
// from the runtime on the compiler.
const ctorName = "__construct"

// pushFrame extends a Fault's stack trace as it unwinds.
func (ip *Interp) pushFrame(err error, fn *bytecode.Function, pc int) error {
	var f *Fault
	if errors.As(err, &f) {
		f.Stack = append(f.Stack, fmt.Sprintf("%s @%d", fn.Name, pc))
		return f
	}
	return err
}

func arith(op bytecode.Op, a, b value.Value) (value.Value, error) {
	switch op {
	case bytecode.OpAdd:
		return value.Add(a, b)
	case bytecode.OpSub:
		return value.Sub(a, b)
	case bytecode.OpMul:
		return value.Mul(a, b)
	case bytecode.OpDiv:
		return value.Div(a, b)
	default:
		return value.Mod(a, b)
	}
}

func compare(op bytecode.Op, a, b value.Value) bool {
	switch op {
	case bytecode.OpCmpEq:
		return value.Equals(a, b)
	case bytecode.OpCmpNeq:
		return !value.Equals(a, b)
	case bytecode.OpCmpSame:
		return value.Identical(a, b)
	case bytecode.OpCmpNSame:
		return !value.Identical(a, b)
	case bytecode.OpCmpLt:
		return value.Compare(a, b) < 0
	case bytecode.OpCmpLte:
		return value.Compare(a, b) <= 0
	case bytecode.OpCmpGt:
		return value.Compare(a, b) > 0
	default:
		return value.Compare(a, b) >= 0
	}
}

// blockStarts caches, per function, a pc-indexed table of block ids
// (+1; 0 = not a block start). The cache is per-Interp so concurrent
// simulated servers do not share mutable state.
func (ip *Interp) blockStarts(fn *bytecode.Function) []int32 {
	if bs, ok := ip.bsCache[fn]; ok {
		return bs
	}
	bs := make([]int32, len(fn.Code)+1)
	for _, b := range fn.Blocks() {
		bs[b.Start] = int32(b.ID) + 1
	}
	if ip.bsCache == nil {
		ip.bsCache = make(map[*bytecode.Function][]int32)
	}
	ip.bsCache[fn] = bs
	return bs
}
