// Package interp implements the MiniHack bytecode interpreter.
//
// The interpreter is the VM's tier-0 engine and, as in HHVM, its last
// resort: every function can always execute here regardless of JIT
// state. It exposes a Tracer interface through which the profiling
// tier collects block counters, type feedback, call-target profiles
// and property-access counters, and through which the simulated JIT
// charges translation costs and feeds the micro-architecture model.
// With a nil Tracer the interpreter runs at full (host) speed.
//
// The steady-state request path allocates nothing: activation frames
// (locals, evaluation stack, iterators) come from a per-depth pool
// that is reused across calls, and arguments are passed as a view of
// the caller's stack (the callee copies them into its locals before
// touching its own stack).
package interp

import (
	"errors"
	"fmt"
	"io"

	"jumpstart/internal/bytecode"
	"jumpstart/internal/object"
	"jumpstart/internal/value"
)

// Tracer observes execution. All methods are called synchronously on
// the interpreter goroutine; implementations must be cheap.
type Tracer interface {
	// OnEnter fires when a MiniHack function activation begins.
	OnEnter(fn *bytecode.Function)
	// OnBlock fires when control enters a bytecode basic block.
	OnBlock(fn *bytecode.Function, block int)
	// OnCallSite fires before a call executes, identifying the
	// resolved callee (method dispatch included).
	OnCallSite(fn *bytecode.Function, pc int, callee *bytecode.Function)
	// OnReturn fires when an activation ends (normally or via fault).
	OnReturn(fn *bytecode.Function)
	// OnNewObj fires after object allocation.
	OnNewObj(obj *object.Object)
	// OnPropAccess fires on property reads/writes with the resolved
	// physical slot.
	OnPropAccess(obj *object.Object, slot int, write bool)
	// OnOpTypes fires at dynamically-typed operations with the operand
	// kinds observed (b is KindNull for unary sites).
	OnOpTypes(fn *bytecode.Function, pc int, a, b value.Kind)
}

// Memoizer lets an external cache (internal/replay) intercept direct
// calls. The interpreter consults it at every OpFCallD site:
//
//   - TryReplay may satisfy the call from a recorded entry. On ok it
//     has already applied every side effect of the call (tracer
//     charges, heap advance) and returns the result plus the fuel the
//     real execution would have consumed.
//   - Otherwise BeginCapture may arm recording for this call; if it
//     returns true the interpreter reports the subtree's fuel, result
//     and error to EndCapture exactly once, after the call completes
//     and before unwinding a fault.
//
// The memoizer sees the call before OnCallSite fires, so call-site
// tracer effects are part of the recorded entry and are skipped
// entirely on replay.
type Memoizer interface {
	TryReplay(caller, callee *bytecode.Function, pc int, args []value.Value,
		fuelLeft int64, depthRoom int) (ret value.Value, steps int64, ok bool)
	BeginCapture(caller, callee *bytecode.Function, pc int, args []value.Value) bool
	EndCapture(steps int64, ret value.Value, err error)
}

// Fault is a MiniHack runtime error carrying a VM-level stack trace.
type Fault struct {
	Msg   string
	Stack []string // innermost first: "func @pc"
}

func (f *Fault) Error() string {
	return "interp: fault: " + f.Msg
}

// ErrFuel is returned when execution exceeds the configured step
// budget (runaway-loop protection for generated workloads).
var ErrFuel = errors.New("interp: execution budget exhausted")

// Config parameterizes an Interp.
type Config struct {
	// Out receives builtin print output. Nil discards it.
	Out io.Writer
	// Tracer observes execution. Nil disables tracing.
	Tracer Tracer
	// MaxSteps bounds total bytecode instructions per entry call
	// (0 = 100M).
	MaxSteps int64
	// MaxDepth bounds call nesting (0 = 256).
	MaxDepth int
}

// frame is one pooled activation record. Frames are allocated once per
// nesting depth and reused for every subsequent activation at that
// depth; their buffers only ever grow.
type frame struct {
	locals []value.Value
	stack  []value.Value
	iters  []iterState
}

func (f *frame) push(v value.Value) { f.stack = append(f.stack, v) }

func (f *frame) pop() value.Value {
	v := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	return v
}

// Interp executes bytecode against a runtime class registry.
type Interp struct {
	prog   *bytecode.Program
	reg    *object.Registry
	out    io.Writer
	tracer Tracer
	memo   Memoizer
	fuel   int64
	max    int64
	depth  int
	maxDep int

	frames  []*frame
	bsCache [][]int32   // fn.ID -> pc-indexed block-start table
	icCache [][]icEntry // fn.ID -> pc-indexed inline caches
}

// icEntry is a monomorphic inline cache for one property or method
// instruction: rc is the receiver class last observed at this pc, idx
// the resolved physical slot (OpPropGet/OpPropSet) or method FuncID
// (OpFCallM). Receiver-class layouts are immutable for the life of a
// Registry, so a pointer match makes the cached resolution valid; a
// mismatch falls back to the full by-name lookup and re-caches.
type icEntry struct {
	rc  *object.RuntimeClass
	idx int32
}

// New creates an interpreter for prog/reg.
func New(prog *bytecode.Program, reg *object.Registry, cfg Config) *Interp {
	max := cfg.MaxSteps
	if max == 0 {
		max = 100_000_000
	}
	maxDep := cfg.MaxDepth
	if maxDep == 0 {
		maxDep = 256
	}
	return &Interp{
		prog:   prog,
		reg:    reg,
		out:    cfg.Out,
		tracer: cfg.Tracer,
		max:    max,
		maxDep: maxDep,
	}
}

// Registry returns the interpreter's class registry.
func (ip *Interp) Registry() *object.Registry { return ip.reg }

// Program returns the linked program.
func (ip *Interp) Program() *bytecode.Program { return ip.prog }

// SetTracer swaps the tracer (used when a server transitions between
// profiling and steady-state execution).
func (ip *Interp) SetTracer(t Tracer) { ip.tracer = t }

// SetMemoizer installs (or removes, with nil) the replay cache.
func (ip *Interp) SetMemoizer(m Memoizer) { ip.memo = m }

// CallByName invokes a free function by name from outside the VM.
// The step budget resets per entry call.
func (ip *Interp) CallByName(name string, args ...value.Value) (value.Value, error) {
	fn, ok := ip.prog.FuncByName(name)
	if !ok {
		return value.Null, fmt.Errorf("interp: undefined function %q", name)
	}
	ip.fuel = ip.max
	return ip.call(fn, nil, args)
}

// Call invokes fn directly (used by the server's request dispatcher).
func (ip *Interp) Call(fn *bytecode.Function, args ...value.Value) (value.Value, error) {
	ip.fuel = ip.max
	return ip.call(fn, nil, args)
}

func (ip *Interp) fault(fn *bytecode.Function, pc int, format string, args ...interface{}) error {
	return &Fault{
		Msg:   fmt.Sprintf(format, args...),
		Stack: []string{fmt.Sprintf("%s @%d", fn.Name, pc)},
	}
}

type iterState struct {
	entries []value.Entry
	idx     int
}

// call runs one activation of fn. this is nil for free functions.
// args may alias the caller's evaluation stack; it is copied into
// locals before this activation touches its own stack.
func (ip *Interp) call(fn *bytecode.Function, this *object.Object, args []value.Value) (value.Value, error) {
	if len(args) != fn.NumParams {
		return value.Null, ip.fault(fn, 0, "%s expects %d args, got %d",
			fn.Name, fn.NumParams, len(args))
	}
	if ip.depth >= ip.maxDep {
		return value.Null, ip.fault(fn, 0, "stack overflow (depth %d)", ip.depth)
	}
	d := ip.depth
	ip.depth++
	defer func() { ip.depth-- }()

	if d >= len(ip.frames) {
		ip.frames = append(ip.frames, &frame{})
	}
	fr := ip.frames[d]
	if cap(fr.locals) < fn.NumLocals {
		fr.locals = make([]value.Value, fn.NumLocals)
	}
	locals := fr.locals[:fn.NumLocals]
	n := copy(locals, args)
	clearTail := locals[n:]
	for i := range clearTail {
		clearTail[i] = value.Value{}
	}
	fr.stack = fr.stack[:0]
	if cap(fr.iters) < fn.NumIters {
		fr.iters = make([]iterState, fn.NumIters)
	}
	iters := fr.iters[:fn.NumIters]

	tr := ip.tracer
	if tr != nil {
		tr.OnEnter(fn)
		defer tr.OnReturn(fn)
	}

	// Block tracking: blockStart[pc] = block id + 1, 0 otherwise.
	var blockStart []int32
	if tr != nil {
		blockStart = ip.blockStarts(fn)
	}

	code := fn.Code
	ics := ip.inlineCaches(fn)
	pc := 0
	for {
		if ip.fuel <= 0 {
			return value.Null, ErrFuel
		}
		ip.fuel--
		if tr != nil && blockStart[pc] != 0 {
			tr.OnBlock(fn, int(blockStart[pc]-1))
		}
		in := code[pc]
		switch in.Op {
		case bytecode.OpNop:
			// nothing

		case bytecode.OpNull:
			fr.push(value.Null)
		case bytecode.OpTrue:
			fr.push(value.Bool(true))
		case bytecode.OpFalse:
			fr.push(value.Bool(false))
		case bytecode.OpInt:
			fr.push(value.Int(int64(in.A)))
		case bytecode.OpLit:
			fr.push(fn.Unit.Literal(in.A))
		case bytecode.OpDup:
			fr.push(fr.stack[len(fr.stack)-1])
		case bytecode.OpPopC:
			fr.pop()

		case bytecode.OpCGetL:
			fr.push(locals[in.A])
		case bytecode.OpSetL:
			locals[in.A] = fr.stack[len(fr.stack)-1]
		case bytecode.OpPushL:
			fr.push(locals[in.A])
			locals[in.A] = value.Null

		case bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul, bytecode.OpDiv, bytecode.OpMod:
			n := len(fr.stack)
			a, b := fr.stack[n-2], fr.stack[n-1]
			fr.stack = fr.stack[:n-2]
			if tr != nil {
				tr.OnOpTypes(fn, pc, a.Kind(), b.Kind())
			}
			var v value.Value
			var err error
			switch in.Op {
			case bytecode.OpAdd:
				v, err = value.Add(a, b)
			case bytecode.OpSub:
				v, err = value.Sub(a, b)
			case bytecode.OpMul:
				v, err = value.Mul(a, b)
			case bytecode.OpDiv:
				v, err = value.Div(a, b)
			default:
				v, err = value.Mod(a, b)
			}
			if err != nil {
				return value.Null, ip.fault(fn, pc, "%v", err)
			}
			fr.push(v)

		case bytecode.OpConcat:
			b := fr.pop()
			a := fr.pop()
			if tr != nil {
				tr.OnOpTypes(fn, pc, a.Kind(), b.Kind())
			}
			fr.push(value.Concat(a, b))

		case bytecode.OpNeg:
			a := fr.pop()
			if tr != nil {
				tr.OnOpTypes(fn, pc, a.Kind(), value.KindNull)
			}
			v, err := value.Neg(a)
			if err != nil {
				return value.Null, ip.fault(fn, pc, "%v", err)
			}
			fr.push(v)
		case bytecode.OpNot:
			fr.push(value.Bool(!fr.pop().Truthy()))

		case bytecode.OpBitAnd:
			b := fr.pop()
			fr.push(value.BitAnd(fr.pop(), b))
		case bytecode.OpBitOr:
			b := fr.pop()
			fr.push(value.BitOr(fr.pop(), b))
		case bytecode.OpBitXor:
			b := fr.pop()
			fr.push(value.BitXor(fr.pop(), b))
		case bytecode.OpShl:
			b := fr.pop()
			fr.push(value.Shl(fr.pop(), b))
		case bytecode.OpShr:
			b := fr.pop()
			fr.push(value.Shr(fr.pop(), b))

		case bytecode.OpCmpEq, bytecode.OpCmpNeq, bytecode.OpCmpSame,
			bytecode.OpCmpNSame, bytecode.OpCmpLt, bytecode.OpCmpLte,
			bytecode.OpCmpGt, bytecode.OpCmpGte:
			n := len(fr.stack)
			a, b := fr.stack[n-2], fr.stack[n-1]
			fr.stack = fr.stack[:n-2]
			if tr != nil {
				tr.OnOpTypes(fn, pc, a.Kind(), b.Kind())
			}
			fr.push(value.Bool(compare(in.Op, a, b)))

		case bytecode.OpJmp:
			pc = int(in.A)
			continue
		case bytecode.OpJmpZ:
			if !fr.pop().Truthy() {
				pc = int(in.A)
				continue
			}
		case bytecode.OpJmpNZ:
			if fr.pop().Truthy() {
				pc = int(in.A)
				continue
			}

		case bytecode.OpRet:
			return fr.pop(), nil
		case bytecode.OpFatal:
			return value.Null, ip.fault(fn, pc, "fatal: %s", fr.pop().ToStr())

		case bytecode.OpFCallD:
			callee := ip.prog.Funcs[in.A]
			argc := int(in.B)
			cargs := fr.stack[len(fr.stack)-argc:]
			m := ip.memo
			if m != nil {
				if ret, steps, ok := m.TryReplay(fn, callee, pc, cargs,
					ip.fuel, ip.maxDep-ip.depth); ok {
					ip.fuel -= steps
					fr.stack = fr.stack[:len(fr.stack)-argc]
					fr.push(ret)
					break
				}
			}
			capturing := m != nil && m.BeginCapture(fn, callee, pc, cargs)
			fuel0 := ip.fuel
			if tr != nil {
				tr.OnCallSite(fn, pc, callee)
			}
			ret, err := ip.call(callee, nil, cargs)
			if capturing {
				m.EndCapture(fuel0-ip.fuel, ret, err)
			}
			if err != nil {
				return value.Null, ip.pushFrame(err, fn, pc)
			}
			fr.stack = fr.stack[:len(fr.stack)-argc]
			fr.push(ret)

		case bytecode.OpFCall:
			name := fn.Unit.Literal(in.A).AsStr()
			return value.Null, ip.fault(fn, pc, "undefined function %q", name)

		case bytecode.OpFCallM:
			argc := int(in.B)
			cargs := fr.stack[len(fr.stack)-argc:]
			recv := fr.stack[len(fr.stack)-argc-1]
			if recv.Kind() != value.KindObj {
				return value.Null, ip.fault(fn, pc, "method call on %s", recv.Kind())
			}
			obj := recv.AsObj().(*object.Object)
			rc := obj.Class()
			var mid bytecode.FuncID
			if ic := &ics[pc]; ic.rc == rc {
				mid = bytecode.FuncID(ic.idx)
			} else {
				name := fn.Unit.Literal(in.A).AsStr()
				m, ok := rc.Meta.LookupMethod(name)
				if !ok {
					return value.Null, ip.fault(fn, pc, "class %s has no method %q",
						obj.ClassName(), name)
				}
				mid = m
				ic.rc, ic.idx = rc, int32(m)
			}
			callee := ip.prog.Funcs[mid]
			if argc != callee.NumParams {
				return value.Null, ip.fault(fn, pc, "%s expects %d args, got %d",
					callee.Name, callee.NumParams, argc)
			}
			if tr != nil {
				tr.OnCallSite(fn, pc, callee)
			}
			ret, err := ip.call(callee, obj, cargs)
			if err != nil {
				return value.Null, ip.pushFrame(err, fn, pc)
			}
			fr.stack = fr.stack[:len(fr.stack)-argc-1]
			fr.push(ret)

		case bytecode.OpNewObj:
			argc := int(in.B)
			cargs := fr.stack[len(fr.stack)-argc:]
			rc := ip.reg.Class(bytecode.ClassID(in.A))
			obj := ip.reg.Heap().NewObject(rc)
			if tr != nil {
				tr.OnNewObj(obj)
			}
			if ctorID, ok := rc.Meta.LookupMethod(ctorName); ok {
				ctor := ip.prog.Funcs[ctorID]
				if argc != ctor.NumParams {
					return value.Null, ip.fault(fn, pc, "%s expects %d args, got %d",
						ctor.Name, ctor.NumParams, argc)
				}
				if tr != nil {
					tr.OnCallSite(fn, pc, ctor)
				}
				if _, err := ip.call(ctor, obj, cargs); err != nil {
					return value.Null, ip.pushFrame(err, fn, pc)
				}
			} else if argc != 0 {
				return value.Null, ip.fault(fn, pc, "class %s has no constructor", rc.Name())
			}
			fr.stack = fr.stack[:len(fr.stack)-argc]
			fr.push(value.Object(obj))

		case bytecode.OpNewObjL:
			name := fn.Unit.Literal(in.A).AsStr()
			return value.Null, ip.fault(fn, pc, "undefined class %q", name)

		case bytecode.OpBuiltin:
			argc := int(in.B)
			cargs := fr.stack[len(fr.stack)-argc:]
			ret, err := ip.builtin(bytecode.Builtin(in.A), cargs)
			fr.stack = fr.stack[:len(fr.stack)-argc]
			if err != nil {
				return value.Null, ip.pushFrame(err, fn, pc)
			}
			fr.push(ret)

		case bytecode.OpThis:
			if this == nil {
				return value.Null, ip.fault(fn, pc, "'this' with no receiver")
			}
			fr.push(value.Object(this))

		case bytecode.OpPropGet:
			base := fr.pop()
			if base.Kind() != value.KindObj {
				return value.Null, ip.fault(fn, pc, "property access on %s", base.Kind())
			}
			obj := base.AsObj().(*object.Object)
			rc := obj.Class()
			var v value.Value
			var slot int
			if ic := &ics[pc]; ic.rc == rc {
				slot = int(ic.idx)
				v = obj.GetSlot(slot)
			} else {
				name := fn.Unit.Literal(in.A).AsStr()
				var ok bool
				v, slot, ok = obj.GetProp(name)
				if !ok {
					return value.Null, ip.fault(fn, pc, "class %s has no property %q",
						obj.ClassName(), name)
				}
				ic.rc, ic.idx = rc, int32(slot)
			}
			if tr != nil {
				tr.OnPropAccess(obj, slot, false)
			}
			fr.push(v)

		case bytecode.OpPropSet:
			v := fr.pop()
			base := fr.pop()
			if base.Kind() != value.KindObj {
				return value.Null, ip.fault(fn, pc, "property write on %s", base.Kind())
			}
			obj := base.AsObj().(*object.Object)
			rc := obj.Class()
			var slot int
			if ic := &ics[pc]; ic.rc == rc {
				slot = int(ic.idx)
				obj.SetSlot(slot, v)
			} else {
				name := fn.Unit.Literal(in.A).AsStr()
				var ok bool
				slot, ok = obj.SetProp(name, v)
				if !ok {
					return value.Null, ip.fault(fn, pc, "class %s has no property %q",
						obj.ClassName(), name)
				}
				ic.rc, ic.idx = rc, int32(slot)
			}
			if tr != nil {
				tr.OnPropAccess(obj, slot, true)
			}
			fr.push(v)

		case bytecode.OpNewVec:
			n := int(in.A)
			a := value.NewArray(n)
			for i := len(fr.stack) - n; i < len(fr.stack); i++ {
				a.Append(fr.stack[i])
			}
			fr.stack = fr.stack[:len(fr.stack)-n]
			fr.push(value.Arr(a))

		case bytecode.OpNewDict:
			n := int(in.A)
			a := value.NewArray(n)
			base := len(fr.stack) - 2*n
			for i := 0; i < n; i++ {
				a.Set(fr.stack[base+2*i], fr.stack[base+2*i+1])
			}
			fr.stack = fr.stack[:base]
			fr.push(value.Arr(a))

		case bytecode.OpIdxGet:
			key := fr.pop()
			base := fr.pop()
			if base.Kind() != value.KindArr {
				return value.Null, ip.fault(fn, pc, "index read on %s", base.Kind())
			}
			v, _ := base.AsArr().Get(key) // absent key yields null, PHP-style
			fr.push(v)

		case bytecode.OpIdxSet:
			v := fr.pop()
			key := fr.pop()
			base := fr.pop()
			if base.Kind() != value.KindArr {
				return value.Null, ip.fault(fn, pc, "index write on %s", base.Kind())
			}
			base.AsArr().Set(key, v)
			fr.push(v)

		case bytecode.OpIdxApp:
			v := fr.pop()
			base := fr.pop()
			if base.Kind() != value.KindArr {
				return value.Null, ip.fault(fn, pc, "append on %s", base.Kind())
			}
			base.AsArr().Append(v)
			fr.push(v)

		case bytecode.OpIterInit:
			seq := fr.pop()
			if seq.Kind() != value.KindArr {
				return value.Null, ip.fault(fn, pc, "foreach over %s", seq.Kind())
			}
			arr := seq.AsArr()
			cnt := arr.Len()
			it := &iters[in.A]
			if cap(it.entries) < cnt {
				it.entries = make([]value.Entry, cnt)
			} else {
				it.entries = it.entries[:cnt]
			}
			for i := 0; i < cnt; i++ {
				it.entries[i] = arr.At(i)
			}
			it.idx = 0
			if cnt == 0 {
				pc = int(in.B)
				continue
			}

		case bytecode.OpIterNext:
			it := &iters[in.A]
			it.idx++
			if it.idx < len(it.entries) {
				pc = int(in.B)
				continue
			}
			it.entries = it.entries[:0] // done; keep backing for reuse

		case bytecode.OpIterKey:
			it := &iters[in.A]
			e := it.entries[it.idx]
			if e.IsStr {
				fr.push(value.Str(e.StrKey))
			} else {
				fr.push(value.Int(e.IntKey))
			}

		case bytecode.OpIterVal:
			fr.push(iters[in.A].entries[iters[in.A].idx].Val)

		default:
			return value.Null, ip.fault(fn, pc, "unimplemented opcode %v", in.Op)
		}
		pc++
	}
}

// ctorName matches hackc.CtorName; duplicated to avoid a dependency
// from the runtime on the compiler.
const ctorName = "__construct"

// pushFrame extends a Fault's stack trace as it unwinds.
func (ip *Interp) pushFrame(err error, fn *bytecode.Function, pc int) error {
	var f *Fault
	if errors.As(err, &f) {
		f.Stack = append(f.Stack, fmt.Sprintf("%s @%d", fn.Name, pc))
		return f
	}
	return err
}

func compare(op bytecode.Op, a, b value.Value) bool {
	switch op {
	case bytecode.OpCmpEq:
		return value.Equals(a, b)
	case bytecode.OpCmpNeq:
		return !value.Equals(a, b)
	case bytecode.OpCmpSame:
		return value.Identical(a, b)
	case bytecode.OpCmpNSame:
		return !value.Identical(a, b)
	case bytecode.OpCmpLt:
		return value.Compare(a, b) < 0
	case bytecode.OpCmpLte:
		return value.Compare(a, b) <= 0
	case bytecode.OpCmpGt:
		return value.Compare(a, b) > 0
	default:
		return value.Compare(a, b) >= 0
	}
}

// blockStarts caches, per function, a pc-indexed table of block ids
// (+1; 0 = not a block start), indexed by FuncID so the steady-state
// lookup is one bounds check instead of a map probe. The cache is
// per-Interp so concurrent simulated servers do not share mutable
// state.
func (ip *Interp) blockStarts(fn *bytecode.Function) []int32 {
	id := int(fn.ID)
	if id >= len(ip.bsCache) {
		grown := make([][]int32, len(ip.prog.Funcs))
		copy(grown, ip.bsCache)
		for len(grown) <= id { // defensive: id beyond the program table
			grown = append(grown, nil)
		}
		ip.bsCache = grown
	}
	if bs := ip.bsCache[id]; bs != nil {
		return bs
	}
	bs := make([]int32, len(fn.Code)+1)
	for _, b := range fn.Blocks() {
		bs[b.Start] = int32(b.ID) + 1
	}
	ip.bsCache[id] = bs
	return bs
}

// inlineCaches returns fn's pc-indexed inline-cache table, allocating
// it on first use.
func (ip *Interp) inlineCaches(fn *bytecode.Function) []icEntry {
	id := int(fn.ID)
	if id >= len(ip.icCache) {
		grown := make([][]icEntry, len(ip.prog.Funcs))
		copy(grown, ip.icCache)
		for len(grown) <= id { // defensive: id beyond the program table
			grown = append(grown, nil)
		}
		ip.icCache = grown
	}
	if ics := ip.icCache[id]; ics != nil {
		return ics
	}
	ics := make([]icEntry, len(fn.Code))
	ip.icCache[id] = ics
	return ics
}
