package interp

import (
	"strings"
	"testing"

	"jumpstart/internal/bytecode"
	"jumpstart/internal/hackc"
	"jumpstart/internal/object"
	"jumpstart/internal/value"
)

func TestBuiltinArityAndTypeErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{`fun f() { return len(1); }`, "wants array or string"},
		{`fun f() { return push(1, 2); }`, "wants array"},
		{`fun f() { return keys("x"); }`, "wants array"},
		{`fun f() { return vals(5); }`, "wants array"},
	}
	for _, c := range cases {
		err := runErr(t, c.src, "f")
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%q: error %q missing %q", c.src, err, c.wantSub)
		}
	}
}

func TestBuiltinMathAndStrings(t *testing.T) {
	src := `
fun f() {
  r = [];
  push(r, floor(2.7));
  push(r, ceil(2.1));
  push(r, pow(2, 10));
  push(r, pow(2.0, 0.5));
  push(r, abs(-3));
  push(r, abs(-2.5));
  push(r, substr("abcdef", 2, 100));
  push(r, substr("abcdef", -100, 2));
  push(r, substr("abcdef", 4, -1));
  push(r, substr("abcdef", 10, 2));
  push(r, ord(""));
  push(r, strval(vals(["a" => 1])[0]));
  push(r, strval(keys(["a" => 1])[0]));
  return r;
}`
	v := run(t, src, "f")
	arr := v.AsArr()
	get := func(i int64) value.Value { x, _ := arr.GetInt(i); return x }
	if get(0).AsFloat() != 2 || get(1).AsFloat() != 3 {
		t.Fatalf("floor/ceil: %v", arr)
	}
	if get(2).AsInt() != 1024 {
		t.Fatalf("pow int: %v", get(2))
	}
	if f := get(3).AsFloat(); f < 1.41 || f > 1.42 {
		t.Fatalf("pow float: %v", get(3))
	}
	if get(4).AsInt() != 3 || get(5).AsFloat() != 2.5 {
		t.Fatalf("abs: %v %v", get(4), get(5))
	}
	if get(6).AsStr() != "cdef" {
		t.Fatalf("substr clamp: %q", get(6).AsStr())
	}
	if get(7).AsStr() != "ab" {
		t.Fatalf("substr negative start: %q", get(7).AsStr())
	}
	if get(8).AsStr() != "e" {
		t.Fatalf("substr negative length: %q", get(8).AsStr())
	}
	if get(9).AsStr() != "" {
		t.Fatalf("substr past end: %q", get(9).AsStr())
	}
	if get(10).AsInt() != 0 {
		t.Fatalf("ord empty: %v", get(10))
	}
	if get(11).AsStr() != "1" || get(12).AsStr() != "a" {
		t.Fatalf("vals/keys: %v %v", get(11), get(12))
	}
}

func TestBuiltinPowOverflowPromotes(t *testing.T) {
	src := `fun f() { return pow(10, 30); }`
	v := run(t, src, "f")
	if v.Kind() != value.KindFloat {
		t.Fatalf("pow overflow should promote to float, got %v", v.Kind())
	}
}

func TestBuiltinMinMaxNoArgs(t *testing.T) {
	// min()/max() with zero args is a runtime error; exercise via raw
	// bytecode since the compiler would happily emit it.
	ip := rawProgram(t, func(b *bytecode.FuncBuilder) {
		b.Emit(bytecode.OpBuiltin, int32(bytecode.BMin), 0)
		b.Emit(bytecode.OpRet, 0, 0)
	})
	if _, err := ip.CallByName("f", value.Int(0)); err == nil {
		t.Fatal("min() should fail")
	}
}

func TestInterpAccessors(t *testing.T) {
	prog, err := hackc.CompileSources(
		map[string]string{"m.mh": `fun f() { return 0; }`}, []string{"m.mh"}, hackc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := object.NewRegistry(prog, nil)
	ip := New(prog, reg, Config{})
	if ip.Registry() != reg || ip.Program() != prog {
		t.Fatal("accessors")
	}
	fn, _ := prog.FuncByName("f")
	if v, err := ip.Call(fn); err != nil || v.AsInt() != 0 {
		t.Fatalf("Call = %v, %v", v, err)
	}
}

func TestMultiTracerFansOut(t *testing.T) {
	prog, err := hackc.CompileSources(map[string]string{"m.mh": `
class C { prop p = 1; fun m() { return this->p; } }
fun g(x) { return x + 1; }
fun f() { c = new C; return g(c->m()); }
`}, []string{"m.mh"}, hackc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := object.NewRegistry(prog, nil)
	a, b := newRecorder(), newRecorder()
	ip := New(prog, reg, Config{Tracer: MultiTracer{a, b}})
	if _, err := ip.CallByName("f"); err != nil {
		t.Fatal(err)
	}
	if a.enters == 0 || a.enters != b.enters {
		t.Fatalf("enters %d vs %d", a.enters, b.enters)
	}
	if a.returns != b.returns || a.props != b.props ||
		a.newObjs != b.newObjs || len(a.calls) != len(b.calls) {
		t.Fatal("multitracer fan-out diverged")
	}
	if a.newObjs != 1 || a.props == 0 {
		t.Fatalf("events missing: %+v", a)
	}
}

func TestCompareAllOps(t *testing.T) {
	src := `fun f(a, b) {
  r = 0;
  if (a == b)  { r += 1; }
  if (a != b)  { r += 2; }
  if (a === b) { r += 4; }
  if (a !== b) { r += 8; }
  if (a < b)   { r += 16; }
  if (a <= b)  { r += 32; }
  if (a > b)   { r += 64; }
  if (a >= b)  { r += 128; }
  return r;
}`
	if v := run(t, src, "f", value.Int(2), value.Int(2)); v.AsInt() != 1+4+32+128 {
		t.Fatalf("equal = %v", v)
	}
	if v := run(t, src, "f", value.Int(1), value.Int(2)); v.AsInt() != 2+8+16+32 {
		t.Fatalf("less = %v", v)
	}
	if v := run(t, src, "f", value.Int(1), value.Str("1")); v.AsInt() != 1+8+32+128 {
		t.Fatalf("loose-equal = %v", v)
	}
}
