package interp

import (
	"strings"
	"testing"

	"jumpstart/internal/bytecode"
	"jumpstart/internal/hackc"
	"jumpstart/internal/object"
	"jumpstart/internal/value"
)

// run compiles src (optimized and unoptimized), calls entry with args
// in both, checks they agree, and returns the result.
func run(t *testing.T, src, entry string, args ...value.Value) value.Value {
	t.Helper()
	var results []value.Value
	for _, opt := range []bool{false, true} {
		prog, err := hackc.CompileSources(
			map[string]string{"m.mh": src}, []string{"m.mh"}, hackc.Options{Optimize: opt})
		if err != nil {
			t.Fatalf("compile(opt=%v): %v", opt, err)
		}
		reg, err := object.NewRegistry(prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		ip := New(prog, reg, Config{})
		v, err := ip.CallByName(entry, args...)
		if err != nil {
			t.Fatalf("run(opt=%v): %v", opt, err)
		}
		results = append(results, v)
	}
	if !value.Identical(results[0], results[1]) {
		t.Fatalf("optimizer changed behaviour: %v vs %v", results[0], results[1])
	}
	return results[0]
}

// runErr compiles without optimization and returns the execution error.
func runErr(t *testing.T, src, entry string, args ...value.Value) error {
	t.Helper()
	prog, err := hackc.CompileSources(
		map[string]string{"m.mh": src}, []string{"m.mh"}, hackc.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	reg, err := object.NewRegistry(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	ip := New(prog, reg, Config{})
	_, err = ip.CallByName(entry, args...)
	if err == nil {
		t.Fatalf("expected runtime error")
	}
	return err
}

func TestArithmeticProgram(t *testing.T) {
	v := run(t, `fun f(a, b) { return (a + b) * 2 - a % b; }`, "f",
		value.Int(7), value.Int(3))
	if v.AsInt() != 19 {
		t.Fatalf("f(7,3) = %v", v)
	}
}

func TestFib(t *testing.T) {
	src := `fun fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }`
	if v := run(t, src, "fib", value.Int(15)); v.AsInt() != 610 {
		t.Fatalf("fib(15) = %v", v)
	}
}

func TestLoops(t *testing.T) {
	src := `
fun f(n) {
  t = 0;
  for (i = 1; i <= n; i += 1) {
    if (i % 3 == 0) { continue; }
    if (i > 8) { break; }
    t += i;
  }
  j = 0;
  while (j < 3) { t *= 2; j += 1; }
  return t;
}`
	// 1+2+4+5+7+8 = 27; *8 = 216.
	if v := run(t, src, "f", value.Int(100)); v.AsInt() != 216 {
		t.Fatalf("f = %v", v)
	}
}

func TestForeach(t *testing.T) {
	src := `
fun f() {
  a = ["x" => 10, "y" => 20, 5];
  keys = "";
  sum = 0;
  foreach (a as k => v) { keys = keys . k . ","; sum += v; }
  foreach (a as v) { sum += v; }
  return keys . sum;
}`
	if v := run(t, src, "f"); v.AsStr() != "x,y,0,70" {
		t.Fatalf("f = %v", v)
	}
}

func TestForeachEmpty(t *testing.T) {
	src := `fun f() { s = 0; foreach ([] as v) { s += 1; } return s; }`
	if v := run(t, src, "f"); v.AsInt() != 0 {
		t.Fatalf("f = %v", v)
	}
}

func TestNestedForeach(t *testing.T) {
	src := `
fun f() {
  t = 0;
  foreach ([1, 2, 3] as a) {
    foreach ([10, 20] as b) { t += a * b; }
  }
  return t;
}`
	if v := run(t, src, "f"); v.AsInt() != 180 {
		t.Fatalf("f = %v", v)
	}
}

func TestObjectsAndMethods(t *testing.T) {
	src := `
class Counter {
  prop n = 0;
  prop step = 1;
  fun __construct(step) { this->step = step; }
  fun bump() { this->n += this->step; return this->n; }
}
class Double extends Counter {
  fun bump() { this->n += this->step * 2; return this->n; }
}
fun f() {
  c = new Counter(5);
  c->bump();
  c->bump();
  d = new Double(3);
  d->bump();
  return c->n * 100 + d->n;
}`
	if v := run(t, src, "f"); v.AsInt() != 1006 {
		t.Fatalf("f = %v", v)
	}
}

func TestPropertyDefaultsAndDeclaredOrder(t *testing.T) {
	src := `
class P { prop a = 1; prop b = "two"; prop c; }
fun f() {
  p = new P;
  p->c = 3;
  s = "";
  // No direct cast; check via individual props.
  return strval(p->a) . p->b . strval(p->c);
}`
	if v := run(t, src, "f"); v.AsStr() != "1two3" {
		t.Fatalf("f = %v", v)
	}
}

func TestArraysByReference(t *testing.T) {
	src := `
fun fill(a) { a[0] = 99; return null; }
fun f() { a = [1]; fill(a); return a[0]; }`
	if v := run(t, src, "f"); v.AsInt() != 99 {
		t.Fatalf("arrays must be reference values, got %v", v)
	}
}

func TestShortCircuitEvaluation(t *testing.T) {
	src := `
fun boom() { return 1 / 0; }
fun f() {
  a = false && boom();
  b = true || boom();
  return (a == false) && b;
}`
	if v := run(t, src, "f"); !v.AsBool() {
		t.Fatalf("short circuit broken: %v", v)
	}
}

func TestStringOps(t *testing.T) {
	src := `
fun f() {
  s = "hello" . " " . "world";
  return substr(s, 0, 5) . "|" . strlen(s) . "|" . substr(s, -5, 5) . "|" . chr(ord("A") + 1);
}`
	if v := run(t, src, "f"); v.AsStr() != "hello|11|world|B" {
		t.Fatalf("f = %v", v)
	}
}

func TestBuiltins(t *testing.T) {
	src := `
fun f() {
  a = [3, 1, 2];
  push(a, 4);
  return len(a) * 1000 + intval(sqrt(16.0)) * 100 + min(5, 2, 8) * 10 + max(1, 7, 3);
}`
	if v := run(t, src, "f"); v.AsInt() != 4427 {
		t.Fatalf("f = %v", v)
	}
}

func TestTypePredicates(t *testing.T) {
	src := `
fun f() {
  r = 0;
  if (is_null(null)) { r += 1; }
  if (is_int(3)) { r += 10; }
  if (is_string("s")) { r += 100; }
  if (is_array([1])) { r += 1000; }
  if (is_object(new C)) { r += 10000; }
  return r;
}
class C { prop x; }`
	if v := run(t, src, "f"); v.AsInt() != 11111 {
		t.Fatalf("f = %v", v)
	}
}

func TestHashDeterministic(t *testing.T) {
	src := `fun f(s) { return hash(s); }`
	v1 := run(t, src, "f", value.Str("abc"))
	v2 := run(t, src, "f", value.Str("abc"))
	if !value.Identical(v1, v2) || v1.AsInt() < 0 {
		t.Fatalf("hash = %v, %v", v1, v2)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		src, entry, wantSub string
	}{
		{`fun f() { return 1 / 0; }`, "f", "division by zero"},
		{`fun f() { return "a" + 1; }`, "f", "unsupported operand"},
		{`fun f() { x = null; return x[0]; }`, "f", "index read on null"},
		{`fun f() { x = 1; return x->p; }`, "f", "property access on int"},
		{`fun f() { x = 1; x->p = 2; return x; }`, "f", "property write on int"},
		{`class C { prop a; } fun f() { c = new C; return c->nope; }`, "f", "no property"},
		{`class C { prop a; } fun f() { c = new C; c->zz = 1; return c; }`, "f", "no property"},
		{`class C { prop a; } fun f() { c = new C; return c->m(); }`, "f", "no method"},
		{`class C { prop a; } fun f() { return new C(5); }`, "f", "no constructor"},
		{`fun f() { x = 5; return x->m(); }`, "f", "method call on int"},
		{`fun f() { foreach (5 as v) { } return 0; }`, "f", "foreach over int"},
	}
	for _, c := range cases {
		err := runErr(t, c.src, c.entry)
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%q: error %q missing %q", c.src, err, c.wantSub)
		}
	}
}

func TestFaultCarriesStack(t *testing.T) {
	src := `
fun inner() { return 1 / 0; }
fun outer() { return inner(); }
fun f() { return outer(); }`
	err := runErr(t, src, "f")
	var fault *Fault
	if !asFault(err, &fault) {
		t.Fatalf("want *Fault, got %T", err)
	}
	if len(fault.Stack) != 3 {
		t.Fatalf("stack = %v", fault.Stack)
	}
	if !strings.HasPrefix(fault.Stack[0], "inner") ||
		!strings.HasPrefix(fault.Stack[2], "f ") {
		t.Fatalf("stack order = %v", fault.Stack)
	}
}

func asFault(err error, out **Fault) bool {
	f, ok := err.(*Fault)
	if ok {
		*out = f
	}
	return ok
}

func TestRecursionDepthLimit(t *testing.T) {
	src := `fun f(n) { return f(n + 1); }`
	err := runErr(t, src, "f", value.Int(0))
	if !strings.Contains(err.Error(), "stack overflow") {
		t.Fatalf("err = %v", err)
	}
}

func TestFuelLimit(t *testing.T) {
	prog, err := hackc.CompileSources(
		map[string]string{"m.mh": `fun f() { while (true) { } return 0; }`},
		[]string{"m.mh"}, hackc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := object.NewRegistry(prog, nil)
	ip := New(prog, reg, Config{MaxSteps: 1000})
	_, err = ip.CallByName("f")
	if err != ErrFuel {
		t.Fatalf("err = %v, want ErrFuel", err)
	}
}

func TestPrintOutput(t *testing.T) {
	prog, err := hackc.CompileSources(
		map[string]string{"m.mh": `fun f() { print("x=", 42); print("done"); return null; }`},
		[]string{"m.mh"}, hackc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := object.NewRegistry(prog, nil)
	var buf strings.Builder
	ip := New(prog, reg, Config{Out: &buf})
	if _, err := ip.CallByName("f"); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "x=42\ndone\n" {
		t.Fatalf("output = %q", buf.String())
	}
}

func TestCallUndefinedFunction(t *testing.T) {
	prog, err := hackc.CompileSources(
		map[string]string{"m.mh": `fun f() { return 0; }`}, []string{"m.mh"}, hackc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := object.NewRegistry(prog, nil)
	ip := New(prog, reg, Config{})
	if _, err := ip.CallByName("nope"); err == nil {
		t.Fatal("undefined entry should fail")
	}
	if _, err := ip.CallByName("f", value.Int(1)); err == nil {
		t.Fatal("arity mismatch should fail")
	}
}

// traceRecorder records tracer events for verification.
type traceRecorder struct {
	enters, returns int
	blocks          map[string][]int
	calls           []string
	props           int
	newObjs         int
	opTypes         int
}

func newRecorder() *traceRecorder {
	return &traceRecorder{blocks: map[string][]int{}}
}

func (r *traceRecorder) OnEnter(fn *bytecode.Function)  { r.enters++ }
func (r *traceRecorder) OnReturn(fn *bytecode.Function) { r.returns++ }
func (r *traceRecorder) OnBlock(fn *bytecode.Function, b int) {
	r.blocks[fn.Name] = append(r.blocks[fn.Name], b)
}
func (r *traceRecorder) OnCallSite(fn *bytecode.Function, pc int, callee *bytecode.Function) {
	r.calls = append(r.calls, fn.Name+"->"+callee.Name)
}
func (r *traceRecorder) OnNewObj(o *object.Object)                    { r.newObjs++ }
func (r *traceRecorder) OnPropAccess(o *object.Object, s int, w bool) { r.props++ }
func (r *traceRecorder) OnOpTypes(fn *bytecode.Function, pc int, a, b value.Kind) {
	r.opTypes++
}

func TestTracerEvents(t *testing.T) {
	src := `
class C { prop v = 0; fun set(x) { this->v = x; return null; } }
fun helper(x) { return x + 1; }
fun f(n) {
  c = new C;
  c->set(n);
  t = 0;
  for (i = 0; i < n; i += 1) { t += helper(i); }
  return t + c->v;
}`
	prog, err := hackc.CompileSources(
		map[string]string{"m.mh": src}, []string{"m.mh"}, hackc.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := object.NewRegistry(prog, nil)
	rec := newRecorder()
	ip := New(prog, reg, Config{Tracer: rec})
	v, err := ip.CallByName("f", value.Int(4))
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != 14 { // helper sums 1+2+3+4=10, c->v=4
		t.Fatalf("f(4) = %v", v)
	}
	// f, C::set, 4x helper = 6 enters (+ no ctor).
	if rec.enters != 6 || rec.returns != 6 {
		t.Fatalf("enters/returns = %d/%d", rec.enters, rec.returns)
	}
	if rec.newObjs != 1 {
		t.Fatalf("newObjs = %d", rec.newObjs)
	}
	// set writes v (1 write); f reads c->v (1 read); set's this->v =
	// x is a write... plus compound reads? c->set + read.
	if rec.props < 2 {
		t.Fatalf("props = %d", rec.props)
	}
	if len(rec.calls) != 5 {
		t.Fatalf("calls = %v", rec.calls)
	}
	// helper's entry block runs 4 times.
	if got := len(rec.blocks["helper"]); got < 4 {
		t.Fatalf("helper blocks = %d", got)
	}
	if rec.opTypes == 0 {
		t.Fatal("no type feedback recorded")
	}
}

func TestBlockCountsMatchControlFlow(t *testing.T) {
	src := `fun f(n) { t = 0; i = 0; while (i < n) { t += i; i += 1; } return t; }`
	prog, err := hackc.CompileSources(
		map[string]string{"m.mh": src}, []string{"m.mh"}, hackc.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := object.NewRegistry(prog, nil)
	rec := newRecorder()
	ip := New(prog, reg, Config{Tracer: rec})
	if _, err := ip.CallByName("f", value.Int(10)); err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, b := range rec.blocks["f"] {
		counts[b]++
	}
	fn, _ := prog.FuncByName("f")
	// Loop body block must run exactly 10 times; find it as the block
	// executed 10 times.
	found := false
	for _, c := range counts {
		if c == 10 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no block ran 10 times: %v (blocks=%d)", counts, len(fn.Blocks()))
	}
}

func TestMixedArrayLiteralSemantics(t *testing.T) {
	src := `
fun f() {
  m = [7, "k" => 8, 9];
  return m[0] * 100 + m["k"] * 10 + m[1];
}`
	if v := run(t, src, "f"); v.AsInt() != 789 {
		t.Fatalf("f = %v", v)
	}
}

func TestAbsentIndexIsNull(t *testing.T) {
	src := `fun f() { a = [1]; return is_null(a[99]); }`
	if v := run(t, src, "f"); !v.AsBool() {
		t.Fatalf("absent index should be null")
	}
}

func TestCompoundIndexAndPropAssign(t *testing.T) {
	src := `
class C { prop total = 10; }
fun f() {
  a = [2];
  a[0] += 3;
  a[0] *= 4;
  c = new C;
  c->total -= 5;
  c->total /= 5;
  return a[0] + c->total;
}`
	if v := run(t, src, "f"); v.AsInt() != 21 {
		t.Fatalf("f = %v", v)
	}
}

func TestPolymorphicCallSites(t *testing.T) {
	src := `
class A { prop x = 1; fun val() { return 1; } }
class B extends A { fun val() { return 2; } }
fun f() {
  objs = [new A, new B, new A];
  t = 0;
  foreach (objs as o) { t += o->val(); }
  return t;
}`
	if v := run(t, src, "f"); v.AsInt() != 4 {
		t.Fatalf("f = %v", v)
	}
}
