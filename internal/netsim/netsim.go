// Package netsim is a deterministic virtual-time network fabric with
// injectable faults. The profile-store transport (Section VI's
// reliability workflows) rides on it: every RPC a simulated consumer
// or seeder issues is sampled through a Fabric, which draws per-link
// latency from a workload-PRNG-forked stream and applies drop/error
// rates plus scheduled degradations (brownouts, partitions) evaluated
// on the virtual clock.
//
// Determinism contract: a Fabric is pure configuration — all
// randomness comes from caller-supplied Streams, and every Sample
// consumes exactly three draws regardless of the verdict, so a fixed
// (seed, fault schedule) pair always produces the same RPC timeline,
// at any worker count and in any execution order.
package netsim

// Stream is a splitmix64 draw stream, the same generator the workload
// layer uses. Seed it with workload.Fork so transport fetches get
// streams that are independent of the simulation's own PRNGs.
type Stream struct{ state uint64 }

// NewStream returns a stream over the given seed.
func NewStream(seed uint64) *Stream { return &Stream{state: seed} }

// Uint64 returns the next 64-bit draw.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float returns a uniform float64 in [0, 1).
func (s *Stream) Float() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Fault is one scheduled degradation window on the fabric. Zero-value
// fields leave the corresponding base parameter untouched; rates add
// onto the base rates (clamped to 1).
type Fault struct {
	// From/To bound the virtual-time window [From, To).
	From, To float64
	// Link restricts the fault to one link label ("" = every link,
	// unless LinkPrefix is set).
	Link string
	// LinkPrefix restricts the fault to links whose label starts with
	// the prefix — one fault can blanket a family of links (e.g. every
	// inter-region long-haul link labeled "inter:..." while the
	// intra-region links stay healthy). Ignored when Link is set.
	LinkPrefix string
	// ExtraLatency is added to the base RTT while active.
	ExtraLatency float64
	// LatencyFactor multiplies the base RTT while active (0 = 1).
	LatencyFactor float64
	// DropRate / ErrorRate add to the base rates while active.
	DropRate  float64
	ErrorRate float64
	// Partition loses every RPC on the link while active.
	Partition bool
}

// active reports whether the fault applies to link at virtual time t.
func (f *Fault) active(link string, t float64) bool {
	if t < f.From || t >= f.To {
		return false
	}
	if f.Link != "" {
		return f.Link == link
	}
	if f.LinkPrefix != "" {
		return len(link) >= len(f.LinkPrefix) && link[:len(f.LinkPrefix)] == f.LinkPrefix
	}
	return true
}

// Brownout builds the common degradation: elevated drop rate and extra
// latency on every link for [from, to).
func Brownout(from, to, dropRate, extraLatency float64) Fault {
	return Fault{From: from, To: to, DropRate: dropRate, ExtraLatency: extraLatency}
}

// Partition builds a total loss window on one link ("" = all links).
func Partition(from, to float64, link string) Fault {
	return Fault{From: from, To: to, Link: link, Partition: true}
}

// PartitionPrefix builds a total loss window on every link whose label
// starts with prefix (e.g. all "inter:" long-haul links).
func PartitionPrefix(from, to float64, prefix string) Fault {
	return Fault{From: from, To: to, LinkPrefix: prefix, Partition: true}
}

// BrownoutPrefix builds a brownout (elevated drop rate plus extra
// latency) confined to links whose label starts with prefix — the
// lossy-long-haul shape: inter-region links degrade, intra-region
// links stay healthy.
func BrownoutPrefix(from, to, dropRate, extraLatency float64, prefix string) Fault {
	return Fault{From: from, To: to, LinkPrefix: prefix,
		DropRate: dropRate, ExtraLatency: extraLatency}
}

// Config parameterizes a Fabric.
type Config struct {
	// BaseLatency is the healthy round-trip time in virtual seconds.
	BaseLatency float64
	// LatencyJitter is added uniformly in [0, LatencyJitter) per RPC.
	LatencyJitter float64
	// DropRate is the probability an RPC is silently lost (the caller
	// observes a timeout).
	DropRate float64
	// ErrorRate is the probability the far end answers with an error
	// after the usual latency.
	ErrorRate float64
	// Faults are the scheduled degradation windows.
	Faults []Fault
}

// Fabric samples RPC verdicts for the configured network.
type Fabric struct{ cfg Config }

// NewFabric builds a fabric over cfg.
func NewFabric(cfg Config) *Fabric { return &Fabric{cfg: cfg} }

// Verdict is the fate of one RPC attempt.
type Verdict struct {
	// Latency is the round-trip time when the RPC is delivered (Drop
	// false). For errors it is the time until the error response.
	Latency float64
	// Drop means the RPC vanished: the caller waits out its timeout.
	Drop bool
	// Err means the far end responded with a failure after Latency.
	Err bool
}

// Sample decides the fate of one RPC issued on link at virtual time t,
// consuming exactly three draws from r (drop, error, jitter) so the
// stream position is independent of the verdict.
func (f *Fabric) Sample(link string, t float64, r *Stream) Verdict {
	dropRoll := r.Float()
	errRoll := r.Float()
	jitRoll := r.Float()

	lat := f.cfg.BaseLatency
	drop := f.cfg.DropRate
	errRate := f.cfg.ErrorRate
	partitioned := false
	for i := range f.cfg.Faults {
		ft := &f.cfg.Faults[i]
		if !ft.active(link, t) {
			continue
		}
		if ft.Partition {
			partitioned = true
		}
		if ft.LatencyFactor > 0 {
			lat *= ft.LatencyFactor
		}
		lat += ft.ExtraLatency
		drop += ft.DropRate
		errRate += ft.ErrorRate
	}
	if drop > 1 {
		drop = 1
	}
	if errRate > 1 {
		errRate = 1
	}

	v := Verdict{Latency: lat + jitRoll*f.cfg.LatencyJitter}
	switch {
	case partitioned || dropRoll < drop:
		v.Drop = true
	case errRoll < errRate:
		v.Err = true
	}
	return v
}

// VirtualClock is a plain virtual-time cursor implementing the
// transport Clock contract: Sleep advances the cursor, nothing blocks.
type VirtualClock struct{ t float64 }

// NewVirtualClock starts a cursor at the given virtual time.
func NewVirtualClock(t float64) *VirtualClock { return &VirtualClock{t: t} }

// Now returns the cursor position in virtual seconds.
func (c *VirtualClock) Now() float64 { return c.t }

// Sleep advances the cursor by d virtual seconds (non-positive d is a
// no-op, mirroring time.Sleep).
func (c *VirtualClock) Sleep(d float64) {
	if d > 0 {
		c.t += d
	}
}
