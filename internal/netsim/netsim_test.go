package netsim

import (
	"testing"

	"jumpstart/internal/workload"
)

// TestSampleDeterminism pins the fabric contract: the same seed gives
// the same verdict sequence, draw for draw.
func TestSampleDeterminism(t *testing.T) {
	cfg := Config{
		BaseLatency:   0.05,
		LatencyJitter: 0.02,
		DropRate:      0.3,
		ErrorRate:     0.2,
		Faults:        []Fault{Brownout(10, 20, 0.5, 1)},
	}
	run := func() []Verdict {
		f := NewFabric(cfg)
		r := NewStream(workload.Fork(7, 0))
		out := make([]Verdict, 0, 200)
		for i := 0; i < 200; i++ {
			out = append(out, f.Sample("store", float64(i)*0.2, r))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestHealthyFabricIsFreeAndLossless: the zero config (no latency, no
// faults) must deliver every RPC instantly — this is what makes the
// transport perf-neutral when the network is healthy.
func TestHealthyFabricIsFreeAndLossless(t *testing.T) {
	f := NewFabric(Config{})
	r := NewStream(1)
	for i := 0; i < 100; i++ {
		v := f.Sample("store", float64(i), r)
		if v.Drop || v.Err || v.Latency != 0 {
			t.Fatalf("healthy fabric produced %+v", v)
		}
	}
}

// TestBrownoutWindow: inside the window the drop rate applies; outside
// it the base (zero) rates are back in force.
func TestBrownoutWindow(t *testing.T) {
	f := NewFabric(Config{
		BaseLatency: 0.1,
		Faults:      []Fault{Brownout(100, 200, 1.0, 2.5)},
	})
	r := NewStream(workload.Fork(3, 1))
	for _, tm := range []float64{0, 99.9, 200, 500} {
		if v := f.Sample("store", tm, r); v.Drop || v.Err {
			t.Fatalf("t=%v outside window dropped: %+v", tm, v)
		}
	}
	for _, tm := range []float64{100, 150, 199.9} {
		v := f.Sample("store", tm, r)
		if !v.Drop {
			t.Fatalf("t=%v inside brownout delivered: %+v", tm, v)
		}
		if v.Latency < 2.6 {
			t.Fatalf("t=%v brownout latency %v, want base+extra", tm, v.Latency)
		}
	}
}

// TestPartitionAndLinkScoping: a partition on one link loses all its
// traffic and leaves other links untouched.
func TestPartitionAndLinkScoping(t *testing.T) {
	f := NewFabric(Config{Faults: []Fault{Partition(0, 100, "region0")}})
	r := NewStream(workload.Fork(5, 2))
	for i := 0; i < 50; i++ {
		if v := f.Sample("region0", 50, r); !v.Drop {
			t.Fatalf("partitioned link delivered: %+v", v)
		}
		if v := f.Sample("region1", 50, r); v.Drop {
			t.Fatalf("unpartitioned link dropped: %+v", v)
		}
	}
}

// TestLinkPrefixScoping: a prefix fault blankets every link sharing
// the prefix and nothing else; an exact Link match takes precedence
// over LinkPrefix when both are set.
func TestLinkPrefixScoping(t *testing.T) {
	f := NewFabric(Config{Faults: []Fault{PartitionPrefix(0, 100, "inter:")}})
	r := NewStream(workload.Fork(13, 0))
	for i := 0; i < 50; i++ {
		for _, link := range []string{"inter:r0-r1", "inter:r1-r0", "inter:"} {
			if v := f.Sample(link, 50, r); !v.Drop {
				t.Fatalf("prefixed link %q delivered: %+v", link, v)
			}
		}
		for _, link := range []string{"intra:r0/n1", "inte", "x"} {
			if v := f.Sample(link, 50, r); v.Drop {
				t.Fatalf("unprefixed link %q dropped: %+v", link, v)
			}
		}
	}
	// Outside the window the prefix fault is inert.
	if v := f.Sample("inter:r0-r1", 100, r); v.Drop {
		t.Fatalf("expired prefix fault dropped: %+v", v)
	}
	// Link wins over LinkPrefix: the exact label scopes the fault.
	g := NewFabric(Config{Faults: []Fault{{
		From: 0, To: 100, Link: "inter:r0-r1", LinkPrefix: "intra:", Partition: true,
	}}})
	if v := g.Sample("intra:r0/n0", 50, r); v.Drop {
		t.Fatalf("LinkPrefix overrode exact Link: %+v", v)
	}
	if v := g.Sample("inter:r0-r1", 50, r); !v.Drop {
		t.Fatalf("exact Link match delivered: %+v", v)
	}
}

// TestBrownoutPrefix: degraded drop rate and latency confined to the
// prefixed links, healthy elsewhere — the lossy-long-haul shape the
// multi-region store propagates over.
func TestBrownoutPrefix(t *testing.T) {
	f := NewFabric(Config{
		BaseLatency: 0.1,
		Faults:      []Fault{BrownoutPrefix(0, 100, 1.0, 2.0, "inter:")},
	})
	r := NewStream(workload.Fork(17, 0))
	for i := 0; i < 30; i++ {
		if v := f.Sample("inter:r0-r1", 50, r); !v.Drop {
			t.Fatalf("browned-out long-haul delivered: %+v", v)
		}
		v := f.Sample("intra:r0/n0", 50, r)
		if v.Drop || v.Err || v.Latency != 0.1 {
			t.Fatalf("intra link degraded: %+v", v)
		}
	}
}

// TestLatencyFactorAndClamping covers the multiplicative latency knob
// and the rate clamp when stacked faults exceed 1.
func TestLatencyFactorAndClamping(t *testing.T) {
	f := NewFabric(Config{
		BaseLatency: 0.2,
		DropRate:    0.6,
		Faults: []Fault{
			{From: 0, To: 10, LatencyFactor: 3},
			{From: 0, To: 10, DropRate: 0.9}, // 0.6+0.9 clamps to 1
		},
	})
	r := NewStream(workload.Fork(9, 0))
	for i := 0; i < 30; i++ {
		v := f.Sample("x", 5, r)
		if !v.Drop {
			t.Fatalf("clamped drop rate 1 still delivered: %+v", v)
		}
		if v.Latency < 0.6-1e-12 {
			t.Fatalf("latency factor not applied: %v", v.Latency)
		}
	}
}

// TestSampleDrawCountConstant: every Sample consumes exactly three
// draws, so verdicts never shift the stream position.
func TestSampleDrawCountConstant(t *testing.T) {
	cfg := Config{DropRate: 1} // every RPC drops
	fDrop := NewFabric(cfg)
	fOK := NewFabric(Config{})
	r1 := NewStream(workload.Fork(11, 0))
	r2 := NewStream(workload.Fork(11, 0))
	for i := 0; i < 10; i++ {
		fDrop.Sample("x", 0, r1)
		fOK.Sample("x", 0, r2)
	}
	if r1.Uint64() != r2.Uint64() {
		t.Fatal("verdict changed stream draw count")
	}
}

func TestVirtualClock(t *testing.T) {
	c := NewVirtualClock(10)
	c.Sleep(2.5)
	c.Sleep(-1) // no-op
	c.Sleep(0)  // no-op
	if c.Now() != 12.5 {
		t.Fatalf("now = %v", c.Now())
	}
}
