// Package replay memoizes translation execution. The first time a
// direct call executes with a given (callee, caller-context, argument)
// signature, the cycle charges, guard failures, allocation effects and
// micro-architectural event stream of the whole call subtree are
// captured into a compact entry; later calls with the same signature
// replay the entry — recharging the same cycles to the same telemetry
// buckets and feeding the same fetch/data/branch stream through
// internal/microarch — instead of re-interpreting the bytecode. This
// is the simulator-level analogue of what Jump-Start itself does:
// stop re-deriving state that is known to be identical.
//
// Correctness contract: a replayed call is byte-identical to real
// execution — same cycles per bucket, same microarch state evolution,
// same heap watermark and object ids afterwards, same fuel and guard
// accounting, same return value. Entries are keyed under the JIT's
// layout epoch; any compile, relocation or activation bumps the epoch
// and the whole cache drops, so stale translations can never replay.
// Captures that observe anything unreplayable — a unit load, a
// compile, an instrumentation write, a fault, a non-immediate return —
// are discarded.
package replay

import (
	"sync/atomic"

	"jumpstart/internal/bytecode"
	"jumpstart/internal/jit"
	"jumpstart/internal/microarch"
	"jumpstart/internal/object"
	"jumpstart/internal/telemetry"
	"jumpstart/internal/value"
)

// FnCount is one function's activation count within a captured call
// subtree. Replays bump the server's per-function call counters by
// these amounts so JIT trigger thresholds fire on the same request
// they would under real execution.
type FnCount struct {
	ID    bytecode.FuncID
	Count uint32
}

// Entry is one captured call subtree.
type Entry struct {
	// Ret is the immediate return value (arrays/objects are never
	// captured).
	Ret value.Value
	// Steps is the interpreter fuel the subtree consumed.
	Steps int64
	// MaxDepth is the deepest call nesting relative to the call site.
	MaxDepth int
	// Buckets holds the base cycle charges per telemetry bucket
	// (everything except micro-architectural penalties, which depend on
	// live cache state and are recomputed from Events).
	Buckets [telemetry.NumCycleBuckets]uint64
	// GuardFails is the number of failed guards charged.
	GuardFails uint64
	// Events is the recorded fetch/data/branch stream. Data addresses
	// are relative to the heap watermark at capture start. Empty when
	// the capture ran on an unsampled (non-micro) request.
	Events []microarch.Access
	// HasEvents distinguishes "captured without micro sampling" from
	// "captured with micro sampling but no events occurred".
	HasEvents bool
	// AllocBytes/AllocObjects advance the heap on replay so later
	// allocations get the addresses real execution would have produced.
	AllocBytes   uint64
	AllocObjects uint64
	// Enters lists every function activated in the subtree.
	Enters []FnCount
}

// key identifies a memoizable call: the callee, the caller-side
// dispatch context (non-zero only when the caller's optimized
// translation has an inline/devirt decision at the site), and up to
// two immediate argument values.
type key struct {
	fn     bytecode.FuncID
	ctx    uint64
	nargs  uint8
	k0, k1 value.Kind
	n0, n1 uint64
	s0, s1 string
}

// Config wires a Cache to one server's components.
type Config struct {
	JIT     *jit.JIT
	Runtime *jit.Runtime
	Heap    *object.Heap
	// Mem receives replayed event streams. May be nil only if micro
	// sampling never happens.
	Mem *microarch.Hierarchy
	// NumFuncs sizes the recorder's per-function counters.
	NumFuncs int
	// CanReplay checks — and on success applies — the per-function call
	// count bumps for a prospective replay. It must return false
	// without side effects if any bump would cross a JIT trigger
	// threshold (the real execution would compile, which a replay
	// cannot reproduce).
	CanReplay func(enters []FnCount) bool
	// Tel optionally observes the cache (hit/miss counters, entry
	// gauge). Zero-perturbation: simulation output is identical with or
	// without it.
	Tel *telemetry.Set
	// MaxEntries bounds the entry map; 0 means DefaultMaxEntries.
	MaxEntries int
	// MaxEvents bounds total recorded events; 0 means DefaultMaxEvents.
	MaxEvents int
}

// Cache capacity defaults. There is no eviction: correctness never
// depends on hit rate, so a full cache simply stops capturing.
const (
	DefaultMaxEntries = 1 << 16
	DefaultMaxEvents  = 4 << 20
)

// Cache is one server's replay memoizer. It implements
// interp.Memoizer. Not safe for concurrent use — like the rest of a
// simulated server, it is single-threaded.
type Cache struct {
	cfg   Config
	epoch uint64 // JIT epoch the entries were captured under

	entries     map[key]*Entry
	totalEvents int

	rec       recorder
	capturing bool
	curKey    key

	localHits, localMisses uint64
	cHits, cMisses         *telemetry.Counter
	gEntries               *telemetry.Gauge
}

// NewCache builds a replay cache for one server.
func NewCache(cfg Config) *Cache {
	if cfg.MaxEntries == 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = DefaultMaxEvents
	}
	c := &Cache{
		cfg:     cfg,
		entries: make(map[key]*Entry),
	}
	c.rec.counts = make([]uint32, cfg.NumFuncs)
	c.cHits = cfg.Tel.Counter("replay.hits_total")
	c.cMisses = cfg.Tel.Counter("replay.misses_total")
	c.gEntries = cfg.Tel.Gauge("replay.entries")
	return c
}

// Hits returns the number of replayed calls.
func (c *Cache) Hits() uint64 { return c.localHits }

// Misses returns the number of lookups that had to execute for real.
func (c *Cache) Misses() uint64 { return c.localMisses }

// Entries returns the live entry count.
func (c *Cache) Entries() int { return len(c.entries) }

// syncEpoch drops every entry when the JIT layout epoch has moved.
// The map's buckets are retained, so steady-state operation allocates
// nothing here.
func (c *Cache) syncEpoch() {
	e := c.cfg.JIT.Epoch()
	if e == c.epoch {
		return
	}
	c.epoch = e
	for k := range c.entries {
		delete(c.entries, k)
	}
	c.totalEvents = 0
	c.gEntries.Set(0)
}

// makeKey builds the lookup key, rejecting calls whose arguments
// cannot be value-compared (arrays, objects) or are too many.
func (c *Cache) makeKey(callee *bytecode.Function, ctx uint64, args []value.Value) (key, bool) {
	if len(args) > 2 {
		return key{}, false
	}
	k := key{fn: callee.ID, ctx: ctx, nargs: uint8(len(args))}
	for i, a := range args {
		kind := a.Kind()
		var num uint64
		var str string
		switch kind {
		case value.KindNull:
		case value.KindBool:
			if a.AsBool() {
				num = 1
			}
		case value.KindInt:
			num = uint64(a.AsInt())
		case value.KindFloat:
			num = uint64(a.AsInt()) // raw payload bits
		case value.KindStr:
			str = a.AsStr()
		default:
			return key{}, false
		}
		if i == 0 {
			k.k0, k.n0, k.s0 = kind, num, str
		} else {
			k.k1, k.n1, k.s1 = kind, num, str
		}
	}
	return k, true
}

// miss counts a failed lookup.
func (c *Cache) miss() (value.Value, int64, bool) {
	c.localMisses++
	c.cMisses.Inc()
	atomic.AddUint64(&totalMisses, 1)
	return value.Null, 0, false
}

// TryReplay implements interp.Memoizer: if an entry matches the call
// and every precondition for a faithful replay holds, it applies the
// entry's effects (cycles, events, guards, heap advance, call-counter
// bumps) and returns the recorded result.
func (c *Cache) TryReplay(caller, callee *bytecode.Function, pc int,
	args []value.Value, fuelLeft int64, depthRoom int) (value.Value, int64, bool) {
	if c.capturing {
		// Nested calls inside a capture must execute for real so the
		// recorder sees their charges. Not counted as a miss.
		return value.Null, 0, false
	}
	c.syncEpoch()
	rt := c.cfg.Runtime
	k, ok := c.makeKey(callee, rt.CallContext(pc), args)
	if !ok {
		return c.miss()
	}
	e := c.entries[k]
	if e == nil {
		return c.miss()
	}
	micro := rt.MicroOn()
	if micro && !e.HasEvents {
		// Entry was captured without micro sampling; recapture so the
		// event stream exists.
		return c.miss()
	}
	if e.Steps > fuelLeft || e.MaxDepth > depthRoom {
		// Real execution would fault (fuel/stack) partway through;
		// replay cannot reproduce that, so let it happen for real.
		return c.miss()
	}
	if !c.cfg.CanReplay(e.Enters) {
		// A call-count bump would cross a JIT trigger: the real
		// execution compiles mid-request. Execute it for real (which
		// also bumps the epoch, invalidating this entry).
		return c.miss()
	}
	// Committed. Feed the recorded event stream through the live
	// hierarchy first (data addresses rebase onto the current heap
	// watermark), then charge base cycles per bucket.
	if micro && len(e.Events) > 0 {
		fetch, data, branch := c.cfg.Mem.Stream(e.Events, c.cfg.Heap.Next())
		rt.ReplayCharge(telemetry.CycleIFetch, fetch)
		rt.ReplayCharge(telemetry.CycleData, data)
		rt.ReplayCharge(telemetry.CycleBranch, branch)
	}
	for b, cyc := range e.Buckets {
		if cyc != 0 {
			rt.ReplayCharge(telemetry.CycleBucket(b), cyc)
		}
	}
	if e.GuardFails != 0 {
		rt.AddGuardFails(e.GuardFails)
	}
	c.cfg.Heap.AdvanceBy(e.AllocBytes, e.AllocObjects)
	c.localHits++
	c.cHits.Inc()
	atomic.AddUint64(&totalHits, 1)
	return e.Ret, e.Steps, true
}

// BeginCapture implements interp.Memoizer: arm the recorder for an
// eligible call. The interpreter calls it only after TryReplay missed,
// and calls EndCapture exactly once if this returns true.
func (c *Cache) BeginCapture(caller, callee *bytecode.Function, pc int,
	args []value.Value) bool {
	if c.capturing {
		return false
	}
	if len(c.entries) >= c.cfg.MaxEntries || c.totalEvents >= c.cfg.MaxEvents {
		return false
	}
	rt := c.cfg.Runtime
	k, ok := c.makeKey(callee, rt.CallContext(pc), args)
	if !ok {
		return false
	}
	c.curKey = k
	c.capturing = true
	c.rec.reset(c.cfg.Heap.Next(), c.cfg.Heap.Allocations(), c.cfg.JIT.Epoch(), rt.MicroOn())
	rt.SetRecorder(&c.rec)
	return true
}

// EndCapture implements interp.Memoizer: finish the capture begun by
// the matching BeginCapture, storing the entry if the execution was
// clean.
func (c *Cache) EndCapture(steps int64, ret value.Value, err error) {
	c.cfg.Runtime.SetRecorder(nil)
	c.capturing = false
	r := &c.rec
	if err != nil || r.dirty || r.depth != 0 {
		return
	}
	if c.cfg.JIT.Epoch() != r.epoch0 {
		return
	}
	switch ret.Kind() {
	case value.KindArr, value.KindObj:
		return
	}
	if c.totalEvents+len(r.events) > c.cfg.MaxEvents {
		return
	}
	e := &Entry{
		Ret:          ret,
		Steps:        steps,
		MaxDepth:     r.maxDepth,
		Buckets:      r.buckets,
		GuardFails:   r.guardFails,
		HasEvents:    r.micro,
		AllocBytes:   c.cfg.Heap.Next() - r.heapBase,
		AllocObjects: c.cfg.Heap.Allocations() - r.objects0,
		Enters:       make([]FnCount, 0, len(r.touched)),
	}
	if len(r.events) > 0 {
		e.Events = append([]microarch.Access(nil), r.events...)
	}
	for _, id := range r.touched {
		e.Enters = append(e.Enters, FnCount{ID: id, Count: r.counts[id]})
	}
	if old := c.entries[c.curKey]; old != nil {
		c.totalEvents -= len(old.Events)
	}
	c.entries[c.curKey] = e
	c.totalEvents += len(e.Events)
	c.gEntries.Set(float64(len(c.entries)))
}

// recorder implements jit.Recorder: it mirrors the runtime's charge
// stream into a pending Entry. One recorder per cache, reused across
// captures.
type recorder struct {
	micro    bool
	heapBase uint64
	objects0 uint64
	epoch0   uint64
	dirty    bool

	depth, maxDepth int

	events     []microarch.Access
	buckets    [telemetry.NumCycleBuckets]uint64
	guardFails uint64

	counts  []uint32 // per-FuncID activation counts
	touched []bytecode.FuncID
}

var _ jit.Recorder = (*recorder)(nil)

func (r *recorder) reset(heapBase, objects0, epoch uint64, micro bool) {
	r.micro = micro
	r.heapBase = heapBase
	r.objects0 = objects0
	r.epoch0 = epoch
	r.dirty = false
	r.depth, r.maxDepth = 0, 0
	r.events = r.events[:0]
	r.buckets = [telemetry.NumCycleBuckets]uint64{}
	r.guardFails = 0
	for _, id := range r.touched {
		r.counts[id] = 0
	}
	r.touched = r.touched[:0]
}

// RecordBase implements jit.Recorder.
func (r *recorder) RecordBase(b telemetry.CycleBucket, cycles uint64) {
	r.buckets[b] += cycles
}

// RecordFetch implements jit.Recorder.
func (r *recorder) RecordFetch(addr uint64, size int) {
	r.events = append(r.events, microarch.Access{
		Addr: addr, Aux: uint32(size), Kind: microarch.AccessFetch,
	})
}

// RecordData implements jit.Recorder. Addresses below the capture's
// heap watermark belong to objects allocated before the capture; a
// replay cannot know where those live, so the capture is poisoned.
func (r *recorder) RecordData(addr uint64) {
	if addr < r.heapBase {
		r.dirty = true
		return
	}
	r.events = append(r.events, microarch.Access{
		Addr: addr - r.heapBase, Kind: microarch.AccessData,
	})
}

// RecordBranch implements jit.Recorder.
func (r *recorder) RecordBranch(pc uint64, taken bool) {
	var aux uint32
	if taken {
		aux = 1
	}
	r.events = append(r.events, microarch.Access{
		Addr: pc, Aux: aux, Kind: microarch.AccessBranch,
	})
}

// RecordGuardFail implements jit.Recorder.
func (r *recorder) RecordGuardFail() { r.guardFails++ }

// RecordEnter implements jit.Recorder.
func (r *recorder) RecordEnter(fn *bytecode.Function) {
	id := fn.ID
	if int(id) < len(r.counts) {
		if r.counts[id] == 0 {
			r.touched = append(r.touched, id)
		}
		r.counts[id]++
	} else {
		r.dirty = true
	}
	r.depth++
	if r.depth > r.maxDepth {
		r.maxDepth = r.depth
	}
}

// RecordReturn implements jit.Recorder.
func (r *recorder) RecordReturn() { r.depth-- }

// MarkDirty implements jit.Recorder.
func (r *recorder) MarkDirty() { r.dirty = true }

// Process-wide hit/miss totals, aggregated across every cache in the
// process. Observability only (the benchmark harness reports the
// global hit rate); never read by the simulation.
var totalHits, totalMisses uint64

// Totals returns the process-wide hit/miss counts.
func Totals() (hits, misses uint64) {
	return atomic.LoadUint64(&totalHits), atomic.LoadUint64(&totalMisses)
}
