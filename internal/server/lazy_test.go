package server

import (
	"testing"

	"jumpstart/internal/jit"
	"jumpstart/internal/telemetry"
)

// countingPager is a test Pager with a scripted outcome.
type countingPager struct {
	cycles float64
	ok     bool
	calls  int
}

func (p *countingPager) PageIn(fn string) (float64, bool) {
	p.calls++
	return p.cycles, p.ok
}

// pageInCycles sums the lazy-pagein bucket across phases.
func pageInCycles(tel *telemetry.Set) float64 {
	total := 0.0
	for _, phase := range tel.Cycles.Phases() {
		total += tel.Cycles.Bucket(phase, telemetry.CyclePageIn)
	}
	return total
}

// TestLazyConsumerServesImmediatelyAndPagesIn is the core lazy-warmup
// contract: a lazy consumer arms its hot functions instead of eagerly
// materializing the package, starts serving no later than the eager
// consumer, and installs optimized translations on demand as first
// calls arrive.
func TestLazyConsumerServesImmediatelyAndPagesIn(t *testing.T) {
	site, pkg := sharedSiteAndPackage(t)

	firstServing := func(ticks []TickStats) int {
		for i, tk := range ticks {
			if tk.Completed > 0 {
				return i
			}
		}
		return -1
	}

	eagerCfg := testConfig(ModeConsumer)
	eagerCfg.Package = pkg
	eager, err := New(site, eagerCfg)
	if err != nil {
		t.Fatal(err)
	}
	eagerTicks := eager.Run(240)
	if eager.LazyStats() != (LazyStats{}) {
		t.Fatalf("eager consumer has lazy stats: %+v", eager.LazyStats())
	}

	site2, pkg2 := sharedSiteAndPackage(t)
	lazyCfg := testConfig(ModeConsumer)
	lazyCfg.Package = pkg2
	lazyCfg.LazyWarmup = true
	lazy, err := New(site2, lazyCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Arming happens when init work is paid, inside the first ticks;
	// nothing may have paged in before any request was served.
	if ls := lazy.LazyStats(); ls != (LazyStats{}) {
		t.Fatalf("lazy stats before run: %+v", ls)
	}
	lazyTicks := lazy.Run(240)
	if ls := lazy.LazyStats(); ls.Armed == 0 {
		t.Fatal("lazy consumer armed no functions")
	}

	fe, fl := firstServing(eagerTicks), firstServing(lazyTicks)
	if fe < 0 || fl < 0 {
		t.Fatalf("a consumer never served (eager %d, lazy %d)", fe, fl)
	}
	// The lazy boot skips the eager preload/precompile/relocate bill,
	// so it cannot start serving later than the eager boot.
	if fl > fe {
		t.Fatalf("lazy consumer served at tick %d, after eager at %d", fl, fe)
	}
	ls := lazy.LazyStats()
	if ls.Paged == 0 {
		t.Fatal("no translations paged in")
	}
	if ls.Misses != 0 {
		t.Fatalf("pagerless page-ins missed: %+v", ls)
	}
	if ls.Paged > ls.Armed {
		t.Fatalf("paged %d > armed %d", ls.Paged, ls.Armed)
	}
	// Paged functions are really active at the optimized tier.
	optimized := 0
	for _, fn := range site2.Prog.Funcs {
		if tr := lazy.JIT().Active(fn.ID); tr != nil && tr.Tier == jit.TierOptimized {
			optimized++
		}
	}
	if optimized < ls.Paged {
		t.Fatalf("%d optimized translations active, want ≥ %d paged", optimized, ls.Paged)
	}
	if lazy.Faults() > 0 {
		t.Fatalf("lazy consumer faults = %d", lazy.Faults())
	}
}

// TestLazyPagerChargesAndCountsMisses wires a scripted pager: its
// fetch cost must land in the lazy-pagein cycle bucket, a miss must
// leave the function to the live-JIT path (no install, no crash), and
// each armed function must be tried at most once — a degraded store
// must not be hammered by retries.
func TestLazyPagerChargesAndCountsMisses(t *testing.T) {
	site, pkg := sharedSiteAndPackage(t)
	tel := telemetry.NewSet()
	cfg := testConfig(ModeConsumer)
	cfg.Package = pkg
	cfg.LazyWarmup = true
	pager := &countingPager{cycles: 5e5, ok: false}
	cfg.Pager = pager
	cfg.Telem = tel
	s, err := New(site, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(240)
	ls := s.LazyStats()
	if pager.calls == 0 {
		t.Fatal("pager never consulted")
	}
	if ls.Paged != 0 {
		t.Fatalf("all-miss pager still paged %d in", ls.Paged)
	}
	if ls.Misses != pager.calls {
		t.Fatalf("misses %d != pager calls %d", ls.Misses, pager.calls)
	}
	// One attempt per armed function, never more.
	if pager.calls > ls.Armed {
		t.Fatalf("pager called %d times for %d armed functions", pager.calls, ls.Armed)
	}
	if got := pageInCycles(tel); got < float64(pager.calls)*5e5 {
		t.Fatalf("page-in bucket charged %g cycles, want ≥ %g", got, float64(pager.calls)*5e5)
	}
	if v := tel.Metrics.Counter("server.lazy_miss_total").Value(); int(v) != ls.Misses {
		t.Fatalf("miss counter %d != misses %d", v, ls.Misses)
	}
	// The server still warms up via live JIT despite a dead pager.
	if s.Faults() > 0 {
		t.Fatalf("faults = %d", s.Faults())
	}
}

// TestLazySucceedingPagerCounter checks the happy-path counter and
// that a working pager's cost is charged too.
func TestLazySucceedingPagerCounter(t *testing.T) {
	site, pkg := sharedSiteAndPackage(t)
	tel := telemetry.NewSet()
	cfg := testConfig(ModeConsumer)
	cfg.Package = pkg
	cfg.LazyWarmup = true
	pager := &countingPager{cycles: 1e5, ok: true}
	cfg.Pager = pager
	cfg.Telem = tel
	s, err := New(site, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(240)
	ls := s.LazyStats()
	if ls.Paged == 0 || ls.Paged != pager.calls {
		t.Fatalf("paged %d with %d pager calls", ls.Paged, pager.calls)
	}
	if v := tel.Metrics.Counter("server.lazy_pagein_total").Value(); int(v) != ls.Paged {
		t.Fatalf("page-in counter %d != paged %d", v, ls.Paged)
	}
	if pageInCycles(tel) <= float64(pager.calls)*1e5 {
		// Install cost (relocation bytes) comes on top of fetch cost.
		t.Fatalf("page-in bucket %g missing install cost", pageInCycles(tel))
	}
}
