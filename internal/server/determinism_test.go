package server

import (
	"bytes"
	"testing"
)

// TestSeederDeterminism runs the full pipeline twice — site serving,
// tier-1 profiling, tier-2 instrumented compilation, Vasm-counter
// harvest, function sorting, serialization — and requires byte-equal
// packages. Determinism is what makes the JIT-replay debugging
// workflow (Section III) and multi-seeder validation trustworthy.
func TestSeederDeterminism(t *testing.T) {
	site := testSite(t)
	run := func() []byte {
		cfg := testConfig(ModeSeeder)
		cfg.JITOpts.InstrumentOptimized = true
		s, err := New(site, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WarmToServing(7200); err != nil {
			t.Fatal(err)
		}
		pkg, ok := s.SeederPackage()
		if !ok {
			t.Fatal("no package")
		}
		return pkg.Encode()
	}
	a := run()
	b := run()
	if !bytes.Equal(a, b) {
		t.Fatalf("seeder runs diverged: %d vs %d bytes", len(a), len(b))
	}
}

// TestSeedersWithDifferentSeedsDiffer checks the flip side: seeders
// with different traffic seeds produce different (but individually
// valid) packages — the randomized-profiles property of Section VI-A2
// relies on genuine package diversity.
func TestSeedersWithDifferentSeedsDiffer(t *testing.T) {
	site := testSite(t)
	run := func(seed uint64) []byte {
		cfg := testConfig(ModeSeeder)
		cfg.JITOpts.InstrumentOptimized = true
		cfg.Seed = seed
		s, err := New(site, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WarmToServing(7200); err != nil {
			t.Fatal(err)
		}
		pkg, _ := s.SeederPackage()
		return pkg.Encode()
	}
	if bytes.Equal(run(1), run(99)) {
		t.Fatal("different seeds produced identical packages")
	}
}
