package server

import "testing"

func TestDiagSteadyVariants(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	site, pkg := sharedSiteAndPackage(t)

	measure := func(name string, mod func(*Config)) float64 {
		cfg := testConfig(ModeConsumer)
		cfg.Package = pkg
		mod(&cfg)
		s, err := New(site, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WarmToServing(3000); err != nil {
			t.Fatal(err)
		}
		st := s.MeasureSteady(800)
		t.Logf("%-28s capacity=%.1f cyc/req=%.0f l1i=%.4f itlb=%.5f br=%.4f guard=%d",
			name, st.CapacityRPS, st.AvgCyclesPerReq,
			st.Mem.L1IMissRate(), st.Mem.ITLBMissRate(), st.Mem.BranchMissRate(), st.GuardFails)
		return st.CapacityRPS
	}
	noJS := func() float64 {
		s, err := New(site, testConfig(ModeNoJumpStart))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WarmToServing(3000); err != nil {
			t.Fatal(err)
		}
		st := s.MeasureSteady(800)
		t.Logf("%-28s capacity=%.1f cyc/req=%.0f l1i=%.4f itlb=%.5f br=%.4f guard=%d",
			"no-jumpstart", st.CapacityRPS, st.AvgCyclesPerReq,
			st.Mem.L1IMissRate(), st.Mem.ITLBMissRate(), st.Mem.BranchMissRate(), st.GuardFails)
		return st.CapacityRPS
	}

	noJS()
	measure("consumer-plain", func(c *Config) {})
	measure("consumer+vasm", func(c *Config) { c.JITOpts.UseVasmCounters = true })
	measure("consumer+callgraph", func(c *Config) { c.JITOpts.UseSeededCallGraph = true })
	measure("consumer+props", func(c *Config) { c.UsePropertyOrder = true })
	measure("consumer+all", func(c *Config) {
		c.JITOpts.UseVasmCounters = true
		c.JITOpts.UseSeededCallGraph = true
		c.UsePropertyOrder = true
	})
}
