package server

import (
	"errors"

	"jumpstart/internal/microarch"
	"jumpstart/internal/workload"
)

// SteadyStats reports a steady-state measurement window, the analogue
// of the paper's in-house performance-measurement tool (Section VII-B):
// servers are warmed, loaded, and measured for throughput and
// micro-architectural metrics.
type SteadyStats struct {
	Requests        int
	AvgCyclesPerReq float64
	// CapacityRPS is the throughput the server could sustain at 100%
	// CPU: Cores × ClockHz / AvgCyclesPerReq. The paper loads servers
	// to 80% CPU; capacity comparisons are load-independent.
	CapacityRPS float64
	Mem         microarch.Stats
	GuardFails  uint64
	Faults      int
}

// WarmToServing ticks the server until it reaches PhaseServing (or
// PhaseCollecting for seeders → until PhaseExited), bounded by
// maxSeconds of virtual time.
func (s *Server) WarmToServing(maxSeconds float64) error {
	target := PhaseServing
	if s.cfg.Mode == ModeSeeder {
		target = PhaseExited
	}
	deadline := s.now + maxSeconds
	for s.now < deadline {
		s.Tick()
		if s.phase == target {
			return nil
		}
	}
	return errors.New("server: warmup did not complete within " +
		"the virtual deadline (phase " + s.phase.String() + ")")
}

// measureSeed fixes the request stream used by MeasureSteady so that
// every server under comparison is measured on the *same* request
// sequence, like the paper's tool running the same workload on both
// halves of the experiment tier.
const measureSeed = 0x5EED_EA1

// MeasureSteady executes n requests back-to-back with full
// micro-architecture sampling and returns the averaged statistics.
//
// Warm-in runs in batches until the JIT reaches quiescence — a whole
// batch without new code being compiled — mirroring the paper's
// measurement tool, which "waits for [the servers] all to warmup"
// before loading them. This matters because the long tail of rare
// endpoints live-compiles lazily: without quiescence, a consumer
// (which skips the profiling phase during which a no-Jump-Start server
// incidentally warms its tail) would be measured with part of its tail
// still interpreted. Call it once the server is in PhaseServing.
func (s *Server) MeasureSteady(n int) SteadyStats {
	stream := s.site.NewTraffic(s.cfg.Region, s.cfg.Bucket, measureSeed)
	const maxWarmBatches = 40
	prevCode := -1
	for i := 0; i < maxWarmBatches; i++ {
		for k := 0; k < n; k++ {
			s.measureOneFrom(stream)
		}
		code := s.j.Cache().TotalUsed()
		if code == prevCode {
			break
		}
		prevCode = code
	}
	s.mem.ResetStats()
	startGuard := s.rt.GuardFails()
	var total uint64
	faults := 0
	for i := 0; i < n; i++ {
		c, err := s.measureOneFrom(stream)
		total += c
		if err != nil {
			faults++
		}
	}
	avg := float64(total) / float64(n)
	return SteadyStats{
		Requests:        n,
		AvgCyclesPerReq: avg,
		CapacityRPS:     float64(s.cfg.Cores) * s.cfg.ClockHz / avg,
		Mem:             s.mem.Stats(),
		GuardFails:      s.rt.GuardFails() - startGuard,
		Faults:          faults,
	}
}

// measureOneFrom executes one request from the given stream with micro
// sampling, without advancing the tick clock or phase counters.
func (s *Server) measureOneFrom(stream *workload.Traffic) (uint64, error) {
	req := stream.Next()
	s.rt.BeginRequest(true)
	if s.col != nil {
		s.col.BeginRequest()
	}
	ep := s.site.Endpoints[req.Endpoint]
	_, err := s.ip.Call(ep.Fn, req.Arg)
	c := s.rt.TakeCycles()
	// Keep the conservation invariant: every cycle the runtime
	// attributes to the profile is also counted in totalCharged.
	s.totalCharged += float64(c)
	return c, err
}

// CapacityLoss integrates a tick series against the steady capacity:
// the fraction of ideal request-serving ability lost during the window
// (the area above the curve in Figures 2 and 4b). steadyRPS is the
// fully-warm completion rate used for normalization.
func CapacityLoss(ticks []TickStats, steadyRPS float64) float64 {
	if steadyRPS <= 0 || len(ticks) == 0 {
		return 0
	}
	var ideal, served float64
	var dt float64
	for i, t := range ticks {
		if i > 0 {
			dt = t.T - ticks[i-1].T
		} else {
			dt = t.T
		}
		ideal += steadyRPS * dt
		got := float64(t.Completed)
		if got > steadyRPS*dt {
			got = steadyRPS * dt
		}
		served += got
	}
	if ideal == 0 {
		return 0
	}
	return 1 - served/ideal
}

// NormalizedRPS converts a tick series into (time, completed/steady)
// points for Figure 2/4b-style plots.
func NormalizedRPS(ticks []TickStats, steadyRPS float64) [][2]float64 {
	out := make([][2]float64, 0, len(ticks))
	var dt float64
	for i, t := range ticks {
		if i > 0 {
			dt = t.T - ticks[i-1].T
		} else {
			dt = t.T
		}
		if dt <= 0 || steadyRPS <= 0 {
			continue
		}
		norm := float64(t.Completed) / dt / steadyRPS
		if norm > 1 {
			norm = 1
		}
		out = append(out, [2]float64{t.T, norm})
	}
	return out
}
