package server

import (
	"testing"

	"jumpstart/internal/hackc"
	"jumpstart/internal/interp"
	"jumpstart/internal/jit"
	"jumpstart/internal/microarch"
	"jumpstart/internal/object"
	"jumpstart/internal/value"
)

// propSrc exercises Section V-C: a class whose hottest property is
// declared last, so the declared layout spreads the hot working set
// over two cache lines and the hotness layout packs it into one.
const propSrc = `
class Big {
  prop p0 = 0; prop p1 = 0; prop p2 = 0; prop p3 = 0; prop p4 = 0; prop p5 = 0;
  prop p6 = 0; prop p7 = 0; prop p8 = 0; prop p9 = 0; prop p10 = 0; prop p11 = 0;
  fun bump(x) { this->p11 += x; return this->p11 + this->p0; }
}
fun work(n) {
  t = 0;
  for (i = 0; i < n; i += 1) {
    o = new Big;
    t += o->bump(i) + o->bump(i+1);
  }
  return t;
}`

// TestPropertyReorderReducesDataMisses checks the V-C mechanism end to
// end: reordering the hot property into the object's first cache line
// must cut D-cache misses roughly in half on this workload.
func TestPropertyReorderReducesDataMisses(t *testing.T) {
	prog, err := hackc.CompileSources(
		map[string]string{"m.mh": propSrc}, []string{"m.mh"}, hackc.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	run := func(layout object.Layout) microarch.Stats {
		reg, err := object.NewRegistry(prog, layout)
		if err != nil {
			t.Fatal(err)
		}
		mem := microarch.New(microarch.DefaultConfig())
		j := jit.New(prog, jit.DefaultOptions(), jit.NewCodeCache(jit.DefaultCacheConfig()))
		rt := jit.NewRuntime(j, mem)
		ip := interp.New(prog, reg, interp.Config{Tracer: rt})
		rt.BeginRequest(true)
		if _, err := ip.CallByName("work", value.Int(500)); err != nil {
			t.Fatal(err)
		}
		return mem.Stats()
	}
	declared := run(nil)
	reordered := run(object.Layout{"Big": {
		"p11", "p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8", "p9", "p10"}})
	if declared.DataAccs != reordered.DataAccs {
		t.Fatalf("access counts differ: %d vs %d", declared.DataAccs, reordered.DataAccs)
	}
	if reordered.L1DMisses > declared.L1DMisses*6/10 {
		t.Fatalf("reorder did not cut misses: %d -> %d",
			declared.L1DMisses, reordered.L1DMisses)
	}
}
