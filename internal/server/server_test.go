package server

import (
	"testing"

	"jumpstart/internal/jit"
	"jumpstart/internal/prof"
	"jumpstart/internal/workload"
)

// testSite builds a small site shared by the tests in this package.
func testSite(t testing.TB) *workload.Site {
	t.Helper()
	cfg := workload.DefaultSiteConfig()
	cfg.Units = 6
	cfg.HelpersPerUnit = 8
	cfg.EndpointsPerUnit = 4
	site, err := workload.GenerateSite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return site
}

// testConfig scales the virtual-time constants down so tests run fast.
func testConfig(mode Mode) Config {
	cfg := DefaultConfig()
	cfg.Mode = mode
	cfg.OfferedRPS = 150
	cfg.TickSeconds = 2
	cfg.ProfileWindow = 400
	cfg.SeederCollectWindow = 300
	cfg.InitCycles = 20e6 // ~6 s at the scaled clock
	cfg.UnitPreloadCycles = 100e3
	cfg.WarmupRequests = 6
	cfg.MicroSampleEvery = 8
	return cfg
}

func TestNoJumpStartLifecycle(t *testing.T) {
	site := testSite(t)
	s, err := New(site, testConfig(ModeNoJumpStart))
	if err != nil {
		t.Fatal(err)
	}
	if s.Ready() {
		t.Fatal("server ready before init")
	}
	ticks := s.Run(240)
	phases := map[Phase]bool{}
	for _, tk := range ticks {
		phases[tk.Phase] = true
	}
	// PhaseOptimizing may complete within a single tick on a small
	// site, so it need not be observed at a tick boundary.
	for _, want := range []Phase{PhaseInit, PhaseProfiling, PhaseServing} {
		if !phases[want] {
			t.Fatalf("phase %v never reached (saw %v)", want, phases)
		}
	}
	// Optimized translations must exist for hot functions.
	optimized := 0
	for _, fn := range site.Prog.Funcs {
		if tr := s.JIT().Active(fn.ID); tr != nil && tr.Tier == jit.TierOptimized {
			optimized++
		}
	}
	if optimized < 10 {
		t.Fatalf("only %d optimized translations", optimized)
	}
	if s.Faults() > 0 {
		t.Fatalf("faults = %d", s.Faults())
	}
	// Code size grows over time and is substantial by the end (Fig 1).
	if ticks[len(ticks)-1].CodeBytes == 0 {
		t.Fatal("no JITed code")
	}
	grew := false
	for i := 1; i < len(ticks); i++ {
		if ticks[i].CodeBytes > ticks[i-1].CodeBytes {
			grew = true
		}
		if ticks[i].CodeBytes < ticks[i-1].CodeBytes {
			t.Fatal("code size shrank")
		}
	}
	if !grew {
		t.Fatal("code size never grew")
	}
	// Latency improves from the first serving ticks to the end
	// (Figure 4a's wall-time-per-request metric): early requests pay
	// interpretation, unit loads and JIT compilation.
	first := -1
	for i, tk := range ticks {
		if tk.Completed > 0 {
			first = i
			break
		}
	}
	if first < 0 {
		t.Fatal("server never served")
	}
	early := avgLatencyRange(ticks, first, first+3)
	late := avgLatencyRange(ticks, len(ticks)*8/10, len(ticks))
	if early < 1.5*late {
		t.Fatalf("no warmup latency improvement: early %.2fms late %.2fms", early, late)
	}
}

func avgLatencyRange(ticks []TickStats, lo, hi int) float64 {
	if hi > len(ticks) {
		hi = len(ticks)
	}
	total, n := 0.0, 0
	for i := lo; i < hi; i++ {
		if ticks[i].Completed > 0 {
			total += ticks[i].AvgLatencyMS
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

func avgRPS(ticks []TickStats, fromFrac, toFrac float64) float64 {
	lo, hi := int(fromFrac*float64(len(ticks))), int(toFrac*float64(len(ticks)))
	if hi > len(ticks) {
		hi = len(ticks)
	}
	total, dur := 0.0, 0.0
	for i := lo; i < hi; i++ {
		total += float64(ticks[i].Completed)
		if i > 0 {
			dur += ticks[i].T - ticks[i-1].T
		}
	}
	if dur == 0 {
		return 0
	}
	return total / dur
}

var (
	cachedSite *workload.Site
	cachedPkg  *prof.Profile
)

// sharedSiteAndPackage memoizes the seeder run; the package is
// re-decoded per test so mutations cannot leak between tests.
func sharedSiteAndPackage(t testing.TB) (*workload.Site, *prof.Profile) {
	t.Helper()
	if cachedSite == nil {
		cachedSite = testSite(t)
		cachedPkg = runSeeder(t, cachedSite)
	}
	pkg, err := prof.Decode(cachedPkg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	return cachedSite, pkg
}

func runSeeder(t testing.TB, site *workload.Site) *prof.Profile {
	t.Helper()
	cfg := testConfig(ModeSeeder)
	cfg.JITOpts.InstrumentOptimized = true
	s, err := New(site, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WarmToServing(3000); err != nil {
		t.Fatal(err)
	}
	pkg, ok := s.SeederPackage()
	if !ok {
		t.Fatal("seeder produced no package")
	}
	return pkg
}

func TestSeederProducesCompletePackage(t *testing.T) {
	_, pkg := sharedSiteAndPackage(t)

	if len(pkg.Funcs) < 20 {
		t.Fatalf("package covers %d funcs", len(pkg.Funcs))
	}
	if len(pkg.Units) == 0 {
		t.Fatal("no preload units")
	}
	if len(pkg.FuncOrder) == 0 {
		t.Fatal("no function order")
	}
	if len(pkg.Props) == 0 {
		t.Fatal("no property counters")
	}
	if len(pkg.CallPairs) == 0 {
		t.Fatal("no tier-2 call pairs")
	}
	vasmFuncs := 0
	for _, fp := range pkg.Funcs {
		if len(fp.VasmCounts) > 0 {
			vasmFuncs++
		}
	}
	if vasmFuncs == 0 {
		t.Fatal("no vasm counters harvested")
	}
	// The package survives a serialization round trip.
	decoded, err := prof.Decode(pkg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded.Funcs) != len(pkg.Funcs) {
		t.Fatal("round trip lost functions")
	}
}

func TestConsumerWarmsFasterThanNoJumpStart(t *testing.T) {
	site, pkg := sharedSiteAndPackage(t)

	consCfg := testConfig(ModeConsumer)
	consCfg.Package = pkg
	consCfg.UsePropertyOrder = true
	consCfg.JITOpts.UseVasmCounters = true
	consCfg.JITOpts.UseSeededCallGraph = true
	cons, err := New(site, consCfg)
	if err != nil {
		t.Fatal(err)
	}
	consTicks := cons.Run(240)

	noJS, err := New(site, testConfig(ModeNoJumpStart))
	if err != nil {
		t.Fatal(err)
	}
	noTicks := noJS.Run(240)

	steady := testConfig(ModeNoJumpStart).OfferedRPS
	lossCons := CapacityLoss(consTicks, steady)
	lossNo := CapacityLoss(noTicks, steady)
	if lossCons >= lossNo {
		t.Fatalf("Jump-Start capacity loss %.3f ≥ no-JS %.3f", lossCons, lossNo)
	}
	if cons.Faults() > 0 {
		t.Fatalf("consumer faults = %d", cons.Faults())
	}
	// The consumer must reach serving without a profiling phase.
	for _, tk := range consTicks {
		if tk.Phase == PhaseProfiling || tk.Phase == PhaseOptimizing {
			t.Fatalf("consumer entered %v", tk.Phase)
		}
	}
}

func TestConsumerRequiresPackage(t *testing.T) {
	site := testSite(t)
	cfg := testConfig(ModeConsumer)
	cfg.Package = nil
	if _, err := New(site, cfg); err == nil {
		t.Fatal("consumer without package accepted")
	}
	bad := DefaultConfig()
	bad.Cores = 0
	if _, err := New(site, bad); err == nil {
		t.Fatal("invalid hardware accepted")
	}
}

func TestMeasureSteadyConsumerBeatsNoJS(t *testing.T) {
	site, pkg := sharedSiteAndPackage(t)

	warmNoJS, err := New(site, testConfig(ModeNoJumpStart))
	if err != nil {
		t.Fatal(err)
	}
	if err := warmNoJS.WarmToServing(3000); err != nil {
		t.Fatal(err)
	}
	warmNoJS.Run(60) // equalize tail warmth with the consumer below
	noStats := warmNoJS.MeasureSteady(600)

	consCfg := testConfig(ModeConsumer)
	consCfg.Package = pkg
	consCfg.UsePropertyOrder = true
	consCfg.JITOpts.UseVasmCounters = true
	consCfg.JITOpts.UseSeededCallGraph = true
	cons, err := New(site, consCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cons.WarmToServing(3000); err != nil {
		t.Fatal(err)
	}
	cons.Run(60)
	consStats := cons.MeasureSteady(600)

	if consStats.Faults > 0 || noStats.Faults > 0 {
		t.Fatalf("faults: cons=%d no=%d", consStats.Faults, noStats.Faults)
	}
	if consStats.CapacityRPS <= 0 || noStats.CapacityRPS <= 0 {
		t.Fatal("zero capacity")
	}
	speedup := consStats.CapacityRPS/noStats.CapacityRPS - 1
	// Paper: +5.4% on the production workload. The test site is too
	// small for the layout effects to fully materialize (its hot code
	// fits in cache); the experiment harness uses a bigger site. Here
	// Jump-Start must at minimum not be meaningfully slower.
	if speedup < -0.02 {
		t.Fatalf("Jump-Start steady-state slower: %.2f%%", speedup*100)
	}
	if consStats.Mem.Fetches == 0 {
		t.Fatal("no micro-architecture data")
	}
}

func TestSeederExitsAndStopsServing(t *testing.T) {
	site := testSite(t)
	cfg := testConfig(ModeSeeder)
	cfg.JITOpts.InstrumentOptimized = true
	s, err := New(site, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WarmToServing(3000); err != nil {
		t.Fatal(err)
	}
	if s.Phase() != PhaseExited {
		t.Fatalf("phase = %v", s.Phase())
	}
	tk := s.Tick()
	if tk.Completed != 0 {
		t.Fatal("exited seeder served requests")
	}
}

func TestModeAndPhaseStrings(t *testing.T) {
	if ModeSeeder.String() != "seeder" || ModeConsumer.String() != "consumer" {
		t.Fatal("mode names")
	}
	if PhaseOptimizing.String() != "optimizing" || PhaseExited.String() != "exited" {
		t.Fatal("phase names")
	}
}

func TestCapacityLossHelpers(t *testing.T) {
	ticks := []TickStats{
		{T: 1, Completed: 0},
		{T: 2, Completed: 50},
		{T: 3, Completed: 100},
	}
	loss := CapacityLoss(ticks, 100)
	// Ideal 300, served 0+50+100=150 → loss 0.5.
	if loss < 0.49 || loss > 0.51 {
		t.Fatalf("loss = %f", loss)
	}
	pts := NormalizedRPS(ticks, 100)
	if len(pts) != 3 || pts[2][1] != 1.0 || pts[0][1] != 0 {
		t.Fatalf("normalized = %v", pts)
	}
	if CapacityLoss(nil, 100) != 0 || CapacityLoss(ticks, 0) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestJITOptionsAblationSwitchesWork(t *testing.T) {
	// Each ablation config must produce a working consumer.
	site, pkg := sharedSiteAndPackage(t)
	variants := []func(*Config){
		func(c *Config) {},
		func(c *Config) { c.JITOpts.UseVasmCounters = true },
		func(c *Config) { c.JITOpts.UseSeededCallGraph = true },
		func(c *Config) { c.UsePropertyOrder = true },
		func(c *Config) { c.JITOpts.FuncSort = jit.SortPH },
		func(c *Config) { c.JITOpts.FuncSort = jit.SortNone },
	}
	for i, v := range variants {
		cfg := testConfig(ModeConsumer)
		cfg.Package = pkg
		v(&cfg)
		s, err := New(site, cfg)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if err := s.WarmToServing(3000); err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		st := s.MeasureSteady(200)
		if st.Faults > 0 {
			t.Fatalf("variant %d: faults", i)
		}
	}
}
