package server

import (
	"strings"
	"testing"

	"jumpstart/internal/bytecode"
	"jumpstart/internal/hackc"
	"jumpstart/internal/workload"
)

func compileSources(srcs map[string]string, names []string) (*bytecode.Program, error) {
	return hackc.CompileSources(srcs, names, hackc.Options{Optimize: true})
}

// TestStalePackageAfterCodePush models the continuous-deployment race:
// a consumer boots a *new* website revision with a package collected on
// the previous one. Functions whose bytecode changed have mismatched
// checksums and must be skipped (falling back to the live-JIT path),
// while everything unchanged still Jump-Starts. The server must come
// up healthy either way.
func TestStalePackageAfterCodePush(t *testing.T) {
	site, pkg := sharedSiteAndPackage(t)

	// "Push" a new revision: recompile with one unit's source edited
	// (a constant tweak changes the bytecode of its functions).
	newSources := map[string]string{}
	for name, src := range site.Sources {
		newSources[name] = src
	}
	edited := site.UnitNames[0]
	newSources[edited] = strings.Replace(newSources[edited], "t += ", "t += 1 + ", 1)
	if newSources[edited] == site.Sources[edited] {
		t.Fatal("edit did not apply")
	}
	newSite := *site
	newSite.Sources = newSources
	rebuilt, err := workload.GenerateSite(site.Config)
	if err != nil {
		t.Fatal(err)
	}
	// GenerateSite is deterministic, so rebuilt == site; compile the
	// edited sources directly instead.
	prog2, err := compileSources(newSources, site.UnitNames)
	if err != nil {
		t.Fatal(err)
	}
	newSite.Prog = prog2
	newSite.Endpoints = nil
	for _, ep := range site.Endpoints {
		fn, ok := prog2.FuncByName(ep.Name)
		if !ok {
			t.Fatalf("endpoint %s lost in rebuild", ep.Name)
		}
		newSite.Endpoints = append(newSite.Endpoints, workload.Endpoint{
			Name: ep.Name, Fn: fn, Partition: ep.Partition,
		})
	}
	_ = rebuilt

	cfg := testConfig(ModeConsumer)
	cfg.Package = pkg
	cfg.UsePropertyOrder = true
	s, err := New(&newSite, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WarmToServing(7200); err != nil {
		t.Fatal(err)
	}
	st := s.MeasureSteady(400)
	if st.Faults > 0 {
		t.Fatalf("stale package caused %d faults", st.Faults)
	}
	if st.CapacityRPS <= 0 {
		t.Fatal("server not serving")
	}
}
