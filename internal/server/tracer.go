package server

import (
	"jumpstart/internal/bytecode"
	"jumpstart/internal/interp"
	"jumpstart/internal/object"
	"jumpstart/internal/telemetry"
	"jumpstart/internal/value"
)

// serverTracer is the server's own execution observer: it charges
// unit first-touch (metadata load) costs and drives tier transitions
// (interpret → profile translation → live translation) based on call
// counts, mirroring HHVM's request-driven JIT triggering.
type serverTracer struct {
	s      *Server
	loaded map[string]bool
	calls  []uint32
}

var _ interp.Tracer = (*serverTracer)(nil)

// unitLoaded marks a unit preloaded without charging (consumer
// startup preloads in bulk; the bulk cost is charged by startupCost).
func (t *serverTracer) unitLoaded(name string) {
	if t.loaded == nil {
		t.loaded = make(map[string]bool)
	}
	t.loaded[name] = true
}

// OnEnter implements interp.Tracer.
func (t *serverTracer) OnEnter(fn *bytecode.Function) {
	s := t.s
	if t.loaded == nil {
		t.loaded = make(map[string]bool)
	}
	if t.calls == nil {
		t.calls = make([]uint32, len(s.site.Prog.Funcs))
	}
	// First touch of a unit loads its metadata on demand — the cost
	// that makes early no-Jump-Start requests so slow (Section VII-A).
	if fn.Unit != nil && !t.loaded[fn.Unit.Name] {
		t.loaded[fn.Unit.Name] = true
		s.rt.AddCyclesBucket(uint64(s.cfg.UnitPreloadCycles), telemetry.CycleUnitLoad)
	}
	t.calls[fn.ID]++

	// Lazy warmup: a marked hot function's first call materializes its
	// packaged translation. The mark clears regardless of outcome, so a
	// pager miss degrades to the live-JIT path below instead of
	// re-fetching against a broken store on every call.
	if s.lazyPending != nil && s.lazyPending[fn.ID] {
		s.lazyPending[fn.ID] = false
		s.lazyPageIn(fn)
	}

	switch s.phase {
	case PhaseProfiling:
		if s.j.Active(fn.ID) == nil && t.calls[fn.ID] >= uint32(s.cfg.ProfileTriggerCalls) {
			if _, err := s.j.CompileProfiling(fn); err == nil {
				s.rt.AddCyclesBucket(
					uint64(float64(len(fn.Code))*s.cfg.Tier1CompileCPI),
					telemetry.CycleTier1Compile)
			}
		}
	case PhaseOptimizing, PhaseServing, PhaseCollecting:
		// The long tail: functions first reached after profiling
		// stopped get live translations until the cache fills
		// (Figure 1's C→D).
		if !s.liveFull && s.j.Active(fn.ID) == nil &&
			t.calls[fn.ID] >= uint32(s.cfg.LiveTriggerCalls) {
			if _, err := s.j.CompileLive(fn); err != nil {
				s.liveFull = true // point D: JITing ceases
			} else {
				s.rt.AddCyclesBucket(
					uint64(float64(len(fn.Code))*s.cfg.LiveCompileCPI),
					telemetry.CycleLiveCompile)
			}
		}
	}
}

// OnBlock implements interp.Tracer.
func (t *serverTracer) OnBlock(fn *bytecode.Function, block int) {}

// OnCallSite implements interp.Tracer.
func (t *serverTracer) OnCallSite(fn *bytecode.Function, pc int, callee *bytecode.Function) {
}

// OnReturn implements interp.Tracer.
func (t *serverTracer) OnReturn(fn *bytecode.Function) {}

// OnNewObj implements interp.Tracer.
func (t *serverTracer) OnNewObj(obj *object.Object) {}

// OnPropAccess implements interp.Tracer.
func (t *serverTracer) OnPropAccess(obj *object.Object, slot int, write bool) {}

// OnOpTypes implements interp.Tracer.
func (t *serverTracer) OnOpTypes(fn *bytecode.Function, pc int, a, b value.Kind) {}
