package server

import (
	"reflect"
	"testing"

	"jumpstart/internal/prof"
)

// runSeries boots a server, runs the warmup window, then a steady
// measurement, returning everything observable: the tick series, the
// steady stats, and cumulative counters. Any divergence between
// replay-cache on and off must show up here.
func runSeries(t *testing.T, mode Mode, replayOn bool) ([]TickStats, SteadyStats, float64, *Server) {
	t.Helper()
	site := testSite(t)
	cfg := testConfig(mode)
	cfg.ReplayCache = replayOn
	var pkg []byte
	if mode == ModeConsumer {
		scfg := testConfig(ModeSeeder)
		scfg.JITOpts.InstrumentOptimized = true
		scfg.ReplayCache = replayOn
		seeder, err := New(site, scfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := seeder.WarmToServing(7200); err != nil {
			t.Fatal(err)
		}
		p, ok := seeder.SeederPackage()
		if !ok {
			t.Fatal("no seeder package")
		}
		pkg = p.Encode()
		dec, err := prof.Decode(pkg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Package = dec
		cfg.UsePropertyOrder = true
	}
	s, err := New(site, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ticks := s.Run(400)
	steady := s.MeasureSteady(200)
	return ticks, steady, s.TotalCycles(), s
}

// TestReplayCacheDeterminism pins the tentpole's correctness contract:
// every simulation observable — the full tick series, steady-state
// stats including micro-architectural miss counts, and total charged
// cycles — is byte-identical with the replay cache on and off. The
// cache is purely a host-side speedup.
func TestReplayCacheDeterminism(t *testing.T) {
	for _, mode := range []Mode{ModeNoJumpStart, ModeConsumer} {
		t.Run(mode.String(), func(t *testing.T) {
			onTicks, onSteady, onTotal, onSrv := runSeries(t, mode, true)
			offTicks, offSteady, offTotal, _ := runSeries(t, mode, false)
			if !reflect.DeepEqual(onTicks, offTicks) {
				for i := range onTicks {
					if !reflect.DeepEqual(onTicks[i], offTicks[i]) {
						t.Fatalf("tick %d diverged:\n on: %+v\noff: %+v",
							i, onTicks[i], offTicks[i])
					}
				}
				t.Fatal("tick series diverged")
			}
			if !reflect.DeepEqual(onSteady, offSteady) {
				t.Fatalf("steady stats diverged:\n on: %+v\noff: %+v",
					onSteady, offSteady)
			}
			if onTotal != offTotal {
				t.Fatalf("total cycles diverged: on %v off %v", onTotal, offTotal)
			}
			c := onSrv.ReplayCache()
			if c == nil {
				t.Fatal("replay cache not installed")
			}
			if c.Hits() == 0 {
				t.Fatal("replay cache never hit; determinism check is vacuous")
			}
			t.Logf("mode %s: %d hits, %d misses, %d entries",
				mode, c.Hits(), c.Misses(), c.Entries())
		})
	}
}

// TestSteadyRequestAllocRegression bounds per-request heap
// allocations on the fully-warm measurement path. The interpreter's
// own machinery (frames, stacks, iterators, argument passing) is
// allocation-free — pinned exactly by TestDispatchAllocFree in
// internal/interp — so what remains here is the simulated program's
// value allocations (the arrays/objects MiniHack code creates per
// request). Replay hits elide even those, so the cache must never
// allocate more than real execution.
func TestSteadyRequestAllocRegression(t *testing.T) {
	perReq := func(on bool) float64 {
		site := testSite(t)
		cfg := testConfig(ModeNoJumpStart)
		cfg.ReplayCache = on
		s, err := New(site, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WarmToServing(7200); err != nil {
			t.Fatal(err)
		}
		// Two rounds so the replay cache captures the measurement
		// stream's key space before the pinned window.
		s.MeasureSteady(400)
		s.MeasureSteady(400)
		stream := s.site.NewTraffic(s.cfg.Region, s.cfg.Bucket, measureSeed)
		return testing.AllocsPerRun(400, func() {
			s.measureOneFrom(stream)
		})
	}
	on := perReq(true)
	off := perReq(false)
	t.Logf("allocs/request: replay on %.1f, off %.1f", on, off)
	if on > off {
		t.Fatalf("replay cache adds allocations: on %.1f > off %.1f", on, off)
	}
	// Regression ceiling: the interpreter rewrite took the machinery to
	// zero; only workload value allocations remain. A jump past this
	// bound means per-request garbage crept back into the harness.
	if off > 40 {
		t.Fatalf("per-request allocations regressed: %.1f > 40", off)
	}
}

// TestReplayCacheInvalidation checks the epoch rule: once entries
// exist, any new translation placement drops them all.
func TestReplayCacheInvalidation(t *testing.T) {
	site := testSite(t)
	cfg := testConfig(ModeNoJumpStart)
	s, err := New(site, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WarmToServing(7200); err != nil {
		t.Fatal(err)
	}
	s.MeasureSteady(100)
	c := s.ReplayCache()
	if c.Entries() == 0 {
		t.Fatal("no entries captured during steady measurement")
	}
	// Any compilation bumps the layout epoch; the next cache operation
	// must observe it and drop every entry.
	fn := site.Endpoints[0].Fn
	if _, err := s.JIT().CompileLive(fn); err != nil {
		t.Skipf("code cache full, cannot force a placement: %v", err)
	}
	s.MeasureSteady(1)
	if got := c.Entries(); got != 0 && uint64(got) > c.Hits() {
		// After the flush the single measured request may legitimately
		// recapture a handful of entries; what must NOT survive is the
		// pre-flush population.
		t.Fatalf("entries survived an epoch bump: %d", got)
	}
}
