// Package server simulates one HHVM web server in virtual time: the
// interpreter and tiered JIT serving synthetic traffic, with explicit
// warmup phases matching the paper's Figure 3 workflows —
// no-Jump-Start (3a), seeder (3b) and consumer (3c).
//
// The simulation executes every request's real bytecode through the
// interpreter while a jit.Runtime charges cycles for whatever
// translation each function currently has; virtual time advances by
// the cycles consumed against the server's core budget. RPS, latency
// and JITed-code-size series therefore emerge from the same mechanisms
// the paper describes rather than from curve fitting.
package server

import (
	"errors"
	"fmt"

	"jumpstart/internal/bytecode"
	"jumpstart/internal/interp"
	"jumpstart/internal/jit"
	"jumpstart/internal/microarch"
	"jumpstart/internal/object"
	"jumpstart/internal/prof"
	"jumpstart/internal/replay"
	"jumpstart/internal/telemetry"
	"jumpstart/internal/workload"
)

// Mode selects the Figure 3 workflow.
type Mode int

// Server modes.
const (
	// ModeNoJumpStart is Figure 3a: profile, optimize and live-JIT
	// during serving.
	ModeNoJumpStart Mode = iota
	// ModeSeeder is Figure 3b: like 3a but optimized code is
	// instrumented; after a collection window the profile package is
	// serialized and the server "exits".
	ModeSeeder
	// ModeConsumer is Figure 3c: deserialize a package, preload and
	// compile everything before serving.
	ModeConsumer
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeNoJumpStart:
		return "no-jumpstart"
	case ModeSeeder:
		return "seeder"
	case ModeConsumer:
		return "consumer"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Phase is the server's lifecycle position.
type Phase int

// Phases, in order of progression.
const (
	// PhaseInit covers process start, package load (consumer), and
	// warmup requests.
	PhaseInit Phase = iota
	// PhaseProfiling serves traffic while tier-1 profiles (3a/3b).
	PhaseProfiling
	// PhaseOptimizing is Figure 1's A→C: profiling stopped, tier-2
	// compiling in the background, then relocation.
	PhaseOptimizing
	// PhaseServing is steady serving with live JIT for the tail.
	PhaseServing
	// PhaseCollecting is the seeder's instrumented-optimized window.
	PhaseCollecting
	// PhaseExited is the seeder after serializing its package.
	PhaseExited
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseInit:
		return "init"
	case PhaseProfiling:
		return "profiling"
	case PhaseOptimizing:
		return "optimizing"
	case PhaseServing:
		return "serving"
	case PhaseCollecting:
		return "collecting"
	case PhaseExited:
		return "exited"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Config parameterizes a simulated server.
type Config struct {
	Mode   Mode
	Region int
	Bucket int
	Seed   uint64

	// Hardware model (paper: 1.8 GHz Xeon D-1581, 16 cores).
	Cores   int
	ClockHz float64

	// Traffic.
	OfferedRPS  float64
	TickSeconds float64
	// MixShift rotates the endpoint mix by a scenario phase
	// (workload.Traffic.SetMixShift); 0 is the stationary mix.
	MixShift float64

	// JIT configuration.
	JITOpts  jit.Options
	CacheCfg jit.CacheConfig
	MemCfg   microarch.Config
	// MicroSampleEvery feeds the micro-architecture model on every
	// N-th request (1 = every request).
	MicroSampleEvery int

	// ReplayCache enables translation-replay memoization: repeated
	// direct calls with the same argument signature replay their
	// recorded cycle charges and micro-architecture event stream
	// instead of re-interpreting bytecode. Simulation output is
	// byte-identical on or off (pinned by TestReplayCacheDeterminism);
	// only host-side speed differs.
	ReplayCache bool

	// Tier transition thresholds.
	ProfileTriggerCalls int // calls before a tier-1 translation
	LiveTriggerCalls    int // calls before a live translation (post-C)
	ProfileWindow       int // profiled requests before point A
	// OptimizeMinEntries excludes functions with fewer profiled
	// activations from tier-2 compilation (insufficient data); they
	// stay on the live-JIT path, forming Figure 1's C→D tail.
	OptimizeMinEntries int

	// Compile-cost model (cycles per bytecode instruction).
	Tier1CompileCPI float64
	Tier2CompileCPI float64
	LiveCompileCPI  float64
	// CompileThreads caps background tier-2 compilation parallelism.
	CompileThreads int
	// RelocCyclesPerByte is the B→C relocation cost.
	RelocCyclesPerByte float64

	// Initialization model.
	InitCycles        float64 // fixed process-start work
	UnitPreloadCycles float64 // first-touch unit load cost
	WarmupRequests    int     // VM warmup requests during init

	// Seeder: instrumented-optimized requests before serialization.
	SeederCollectWindow int

	// Consumer inputs.
	Package *prof.Profile
	// LazyWarmup switches the consumer to lazy package materialization
	// (jumpstart.WarmupLazy): init skips the eager preload, precompile,
	// relocate and warmup-request stages, and every hot function pages
	// its optimized translation in on first call instead. The server
	// starts serving as soon as InitCycles are paid.
	LazyWarmup bool
	// Pager fetches translation artifacts on demand in lazy mode (nil
	// means page-ins are local: no fetch time, install cost only).
	Pager Pager
	// UsePropertyOrder applies the package's property-access counters
	// to object layout (Section V-C).
	UsePropertyOrder bool
	// UseAffinityOrder additionally uses the package's property-pair
	// affinities (the Section V-C future-work extension); it implies
	// and overrides UsePropertyOrder.
	UseAffinityOrder bool

	// MaxQueue bounds the arrival queue (requests beyond it are
	// dropped — lost capacity).
	MaxQueue int

	// Telem is the optional observation set (metrics, trace, cycle
	// profile). Telemetry is zero-perturbation: simulation output is
	// byte-identical whether it is nil or not (pinned by
	// TestTelemetryZeroPerturbation).
	Telem *telemetry.Set
}

// DefaultConfig returns a configuration whose virtual-time constants
// compress the paper's 25-minute warmup onto the 600-second horizon of
// Figure 4.
//
// Scaling note: the synthetic site's requests are ~100-1000× smaller
// than facebook.com's, so the clock is scaled down in the same
// proportion (one simulated cycle stands for a few thousand real
// ones). All costs — instruction execution, compile time, cache-miss
// penalties — share the same cycle unit, so every *relative* result
// (speedups, capacity-loss fractions, miss-rate reductions) is
// unaffected by the scale; only the absolute seconds are compressed.
func DefaultConfig() Config {
	return Config{
		Mode:    ModeNoJumpStart,
		Cores:   16,
		ClockHz: 200_000, // scaled 1.8 GHz (see note above)

		OfferedRPS:  200,
		TickSeconds: 5,

		JITOpts:          jit.DefaultOptions(),
		CacheCfg:         jit.DefaultCacheConfig(),
		MemCfg:           microarch.DefaultConfig(),
		MicroSampleEvery: 4,
		ReplayCache:      true,

		ProfileTriggerCalls: 2,
		LiveTriggerCalls:    2,
		ProfileWindow:       8_000,
		OptimizeMinEntries:  40,

		Tier1CompileCPI:    2_000,
		Tier2CompileCPI:    4_000,
		LiveCompileCPI:     1_500,
		CompileThreads:     3,
		RelocCyclesPerByte: 100,

		InitCycles:        50e6,
		UnitPreloadCycles: 150e3,
		WarmupRequests:    12,

		SeederCollectWindow: 6_000,
		MaxQueue:            600,
	}
}

// TickStats is one tick of the time series the figures plot.
type TickStats struct {
	T            float64 // seconds since process start (end of tick)
	Offered      int
	Completed    int
	Dropped      int
	AvgLatencyMS float64 // mean service latency of completed requests
	CodeBytes    int     // Figure 1's y-axis
	Phase        Phase
	Faults       int
}

// Server is one simulated web server.
type Server struct {
	cfg     Config
	site    *workload.Site
	traffic *workload.Traffic

	reg    *object.Registry
	ip     *interp.Interp
	j      *jit.JIT
	rt     *jit.Runtime
	col    *prof.Collector
	mem    *microarch.Hierarchy
	st     *serverTracer
	replay *replay.Cache

	phase  Phase
	phaseT float64 // virtual time the current phase began
	now    float64 // virtual seconds since process start

	initRemaining float64 // cycles of init work left
	queue         float64 // queued requests (fractional arrivals)

	profiledReqs int
	snapshot     *prof.Profile // tier-1 snapshot at point A
	optTrans     map[string]*jit.Translation
	optQueue     []*bytecode.Function
	optBudget    float64 // compile cycles remaining for current job
	relocBudget  float64
	relocTotal   float64
	collectReqs  int
	pkg          *prof.Profile

	reqCount    int
	faults      int
	liveFull    bool
	startupDone bool

	// Lazy warmup state: lazyPending[id] marks a hot function awaiting
	// its first-call page-in (nil unless Config.LazyWarmup).
	lazyPending []bool
	lazyStats   LazyStats

	// Telemetry. tel may be nil (all uses are nil-safe); the metric
	// handles are resolved once in New so the serve path stays
	// allocation-free. totalCharged independently sums every cycle the
	// server charges — the quantity the cycle profile must conserve.
	tel          *telemetry.Set
	totalCharged float64
	mRequests    *telemetry.Counter
	mFaults      *telemetry.Counter
	mDropped     *telemetry.Counter
	gQueue       *telemetry.Gauge
	gCodeBytes   *telemetry.Gauge
	gPhase       *telemetry.Gauge
	hReqCycles   *telemetry.Histogram
}

// New builds a server for site with cfg.
func New(site *workload.Site, cfg Config) (*Server, error) {
	if cfg.Cores <= 0 || cfg.ClockHz <= 0 || cfg.TickSeconds <= 0 {
		return nil, errors.New("server: invalid hardware config")
	}
	if cfg.Mode == ModeConsumer && cfg.Package == nil {
		return nil, errors.New("server: consumer mode requires a package")
	}
	if err := cfg.MemCfg.Validate(); err != nil {
		return nil, err
	}
	var layout object.Layout
	if cfg.Mode == ModeConsumer && cfg.Package != nil {
		switch {
		case cfg.UseAffinityOrder:
			pairs := make(map[[2]string]uint64, len(cfg.Package.PropPairs))
			for k, n := range cfg.Package.PropPairs {
				pairs[[2]string{k.A, k.B}] = n
			}
			layout = object.AffinityLayout(site.Prog, cfg.Package.Props, pairs)
		case cfg.UsePropertyOrder:
			layout = object.HotnessLayout(site.Prog, cfg.Package.Props)
		}
	}
	reg, err := object.NewRegistry(site.Prog, layout)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		site:     site,
		traffic:  site.NewTraffic(cfg.Region, cfg.Bucket, cfg.Seed),
		reg:      reg,
		mem:      microarch.New(cfg.MemCfg),
		optTrans: map[string]*jit.Translation{},
	}
	if cfg.MixShift != 0 {
		s.traffic.SetMixShift(cfg.MixShift)
	}
	if s.cfg.MicroSampleEvery <= 0 {
		s.cfg.MicroSampleEvery = 1
	}
	s.j = jit.New(site.Prog, cfg.JITOpts, jit.NewCodeCache(cfg.CacheCfg))
	s.rt = jit.NewRuntime(s.j, s.mem)
	s.ip = interp.New(site.Prog, reg, interp.Config{})
	s.st = &serverTracer{s: s}
	s.phase = PhaseInit
	s.initRemaining = cfg.InitCycles
	if cfg.ReplayCache {
		s.replay = replay.NewCache(replay.Config{
			JIT:       s.j,
			Runtime:   s.rt,
			Heap:      reg.Heap(),
			Mem:       s.mem,
			NumFuncs:  len(site.Prog.Funcs),
			CanReplay: s.canReplayEnters,
			Tel:       cfg.Telem,
		})
	}

	s.tel = cfg.Telem
	s.j.SetTelemetry(cfg.Telem, func() float64 { return s.now })
	s.mRequests = s.tel.Counter("server.requests_total")
	s.mFaults = s.tel.Counter("server.faults_total")
	s.mDropped = s.tel.Counter("server.dropped_total")
	s.gQueue = s.tel.Gauge("server.queue_depth")
	s.gCodeBytes = s.tel.Gauge("server.code_bytes")
	s.gPhase = s.tel.Gauge("server.phase")
	s.hReqCycles = s.tel.Histogram("server.request_cycles",
		[]float64{1e3, 1e4, 1e5, 1e6, 1e7})
	s.tel.CycleProf().SetPhase(PhaseInit.String())
	s.tel.Event(0, "server", "start",
		telemetry.S("mode", cfg.Mode.String()),
		telemetry.I("region", int64(cfg.Region)),
		telemetry.I("bucket", int64(cfg.Bucket)),
		telemetry.I("seed", int64(cfg.Seed)))

	s.applyTracer()
	return s, nil
}

// setPhase transitions the lifecycle phase, recording it in the trace,
// the phase gauge and the cycle profile. The finished phase also lands
// as a span covering its whole window — a root span, deliberately:
// server time is process-relative (0 = this process's start), a
// different timebase from the fleet clock, so parenting these under a
// fleet boot span would break the containment invariant.
func (s *Server) setPhase(p Phase) {
	if p == s.phase {
		return
	}
	s.tel.SpanUnder(0, s.phaseT, s.now, "server", "phase:"+s.phase.String())
	s.tel.Event(s.now, "server", "phase-transition",
		telemetry.S("from", s.phase.String()),
		telemetry.S("to", p.String()))
	s.phase = p
	s.phaseT = s.now
	s.gPhase.Set(float64(p))
	s.tel.CycleProf().SetPhase(p.String())
}

// chargeBG records cycles charged outside the request path (init
// stages, background compilation, relocation) in both the conservation
// total and the cycle profile.
func (s *Server) chargeBG(b telemetry.CycleBucket, cycles float64) {
	s.totalCharged += cycles
	s.tel.CycleProf().Add(b, cycles)
}

// TotalCycles returns every cycle the server has charged so far —
// request execution, init work, and background compilation. The cycle
// profile's buckets sum to this value once init has completed
// (asserted by TestCycleProfileConservation).
func (s *Server) TotalCycles() float64 { return s.totalCharged }

// applyTracer installs the tracer stack for the current phase: the
// server tracer and cost-charging runtime always, plus the tier-1
// collector while profiling. The replay memoizer is active exactly
// when the collector is not: tier-1 profiling must observe every real
// execution, so memoization pauses for that window.
func (s *Server) applyTracer() {
	if s.col != nil {
		s.ip.SetTracer(interp.MultiTracer{s.st, s.col, s.rt})
		s.ip.SetMemoizer(nil)
	} else {
		s.ip.SetTracer(interp.MultiTracer{s.st, s.rt})
		if s.replay != nil {
			s.ip.SetMemoizer(s.replay)
		}
	}
}

// canReplayEnters is the replay cache's trigger gate: it re-creates,
// in batch, what serverTracer.OnEnter's per-call bookkeeping would do
// for a memoized subtree. If any bump would cross a JIT trigger
// threshold (the real execution would compile mid-request, which a
// replay cannot reproduce), it refuses without side effects;
// otherwise it applies all call-count bumps and allows the replay.
func (s *Server) canReplayEnters(enters []replay.FnCount) bool {
	t := s.st
	if t.calls == nil {
		t.calls = make([]uint32, len(s.site.Prog.Funcs))
	}
	// A pending lazy page-in inside the subtree would be skipped by a
	// replay (the real execution would fetch and install a translation
	// mid-request); refuse without side effects.
	if s.lazyPending != nil {
		for _, e := range enters {
			if s.lazyPending[e.ID] {
				return false
			}
		}
	}
	var trigger uint32
	triggered := false
	switch s.phase {
	case PhaseProfiling:
		// Defensive: the memoizer is uninstalled while the collector
		// runs, so this branch should be unreachable.
		trigger, triggered = uint32(s.cfg.ProfileTriggerCalls), true
	case PhaseOptimizing, PhaseServing, PhaseCollecting:
		if !s.liveFull {
			trigger, triggered = uint32(s.cfg.LiveTriggerCalls), true
		}
	}
	if triggered {
		for _, e := range enters {
			if s.j.Active(e.ID) == nil && t.calls[e.ID]+e.Count >= trigger {
				return false
			}
		}
	}
	for _, e := range enters {
		t.calls[e.ID] += e.Count
	}
	return true
}

// ReplayCache returns the replay memoizer, or nil when disabled.
func (s *Server) ReplayCache() *replay.Cache { return s.replay }

// Phase returns the server's current phase.
func (s *Server) Phase() Phase { return s.phase }

// Now returns the virtual time in seconds since process start.
func (s *Server) Now() float64 { return s.now }

// Ready reports whether the server is accepting requests.
func (s *Server) Ready() bool {
	return s.phase != PhaseInit && s.phase != PhaseExited
}

// CodeBytes returns the total JITed code bytes (Figure 1).
func (s *Server) CodeBytes() int { return s.j.Cache().TotalUsed() }

// Faults returns the number of faulted requests so far.
func (s *Server) Faults() int { return s.faults }

// SeederPackage returns the serialized-ready profile package once the
// seeder has finished collecting.
func (s *Server) SeederPackage() (*prof.Profile, bool) {
	return s.pkg, s.pkg != nil
}

// Mem returns the micro-architecture hierarchy (for measurements).
func (s *Server) Mem() *microarch.Hierarchy { return s.mem }

// JIT returns the server's JIT (inspection/tests).
func (s *Server) JIT() *jit.JIT { return s.j }

// budgetCycles is the total cycle budget of one tick.
func (s *Server) budgetCycles() float64 {
	return float64(s.cfg.Cores) * s.cfg.ClockHz * s.cfg.TickSeconds
}

// Tick advances one tick of virtual time.
func (s *Server) Tick() TickStats {
	dt := s.cfg.TickSeconds
	budget := s.budgetCycles()
	ts := TickStats{Phase: s.phase}

	// Arrivals accumulate regardless of readiness.
	arrivals := s.cfg.OfferedRPS * dt
	ts.Offered = int(arrivals)
	s.queue += arrivals
	// The queue bound must exceed one tick's arrivals, or it would cap
	// throughput below the offered rate even with spare capacity.
	maxQ := float64(s.cfg.MaxQueue)
	if m := 2 * arrivals; maxQ < m {
		maxQ = m
	}
	if s.queue > maxQ {
		ts.Dropped = int(s.queue - maxQ)
		s.queue = maxQ
		s.mDropped.Add(uint64(ts.Dropped))
	}

	// Initialization consumes the budget before any serving.
	if s.phase == PhaseInit {
		spent := s.runInit(budget)
		budget -= spent
		if s.phase == PhaseInit || budget <= 0 {
			s.now += dt
			ts.T = s.now
			ts.CodeBytes = s.CodeBytes()
			ts.Phase = s.phase
			return ts
		}
	}

	if s.phase == PhaseExited {
		s.now += dt
		ts.T = s.now
		ts.CodeBytes = s.CodeBytes()
		return ts
	}

	// Reserve the background-compilation share up front: HHVM's JIT
	// worker threads run concurrently with the request threads, so
	// tier-2 compilation makes progress even when the server is
	// saturated (otherwise a saturated server would never reach
	// point C).
	var compileBudget float64
	if s.phase == PhaseOptimizing {
		compileBudget = budget * float64(min(s.cfg.CompileThreads, s.cfg.Cores)) /
			float64(s.cfg.Cores)
		budget -= compileBudget
	}

	// Serve queued requests until the budget runs out.
	var latSum float64
	for s.queue >= 1 && budget > 0 {
		cycles, err := s.serveOne()
		if err != nil {
			s.faults++
			ts.Faults++
		}
		budget -= float64(cycles)
		s.queue--
		ts.Completed++
		latSum += float64(cycles) / s.cfg.ClockHz
	}
	if ts.Completed > 0 {
		ts.AvgLatencyMS = latSum / float64(ts.Completed) * 1000
	}

	// Background tier-2 compilation (A→C): the reserved share plus any
	// serving budget left over.
	if s.phase == PhaseOptimizing {
		if budget > 0 {
			compileBudget += budget
		}
		s.advanceOptimization(compileBudget)
	}

	s.now += dt
	ts.T = s.now
	ts.CodeBytes = s.CodeBytes()
	ts.Phase = s.phase
	s.gQueue.Set(s.queue)
	s.gCodeBytes.Set(float64(ts.CodeBytes))
	return ts
}

// Run advances the server for the given virtual duration.
func (s *Server) Run(seconds float64) []TickStats {
	n := int(seconds / s.cfg.TickSeconds)
	out := make([]TickStats, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, s.Tick())
	}
	return out
}

// runInit performs initialization work against a cycle budget,
// transitioning to the first serving phase when everything is paid
// for. It returns the cycles consumed.
//
// Init has two stages: the fixed process-start work (InitCycles), then
// the mode-specific startup (package load + precompilation + warmup
// requests for consumers; sequential warmup requests otherwise). The
// second stage's work is *performed* once — mutating JIT and unit
// state — and its cycle cost is then drained against tick budgets.
func (s *Server) runInit(budget float64) float64 {
	spent := 0.0
	for spent < budget {
		if s.initRemaining > 0 {
			use := s.initRemaining
			if use > budget-spent {
				use = budget - spent
			}
			s.initRemaining -= use
			spent += use
			continue
		}
		if !s.startupDone {
			s.startupDone = true
			// The fixed process-start stage is fully paid for at this
			// point; attribute it before the startup stage is costed.
			s.chargeBG(telemetry.CycleInit, s.cfg.InitCycles)
			s.initRemaining = s.startupCost()
			continue
		}
		// Fully initialized: transition to serving. The runtime's
		// fine-grained cycle attribution starts here — init-phase
		// execution was attributed to the coarse init buckets by
		// startupCost.
		s.rt.SetCycleProfile(s.tel.CycleProf())
		if s.cfg.Mode == ModeConsumer {
			s.setPhase(PhaseServing)
		} else {
			s.setPhase(PhaseProfiling)
			s.col = prof.NewCollector(s.site.Prog)
		}
		s.applyTracer()
		break
	}
	return spent
}

// startupCost performs the one-time mode-specific startup work and
// returns its cycle cost. Called exactly once.
func (s *Server) startupCost() float64 {
	cores := float64(s.cfg.Cores)

	switch s.cfg.Mode {
	case ModeConsumer:
		if s.cfg.LazyWarmup {
			return s.armLazyWarmup()
		}
		p := s.cfg.Package
		total := 0.0
		// Preload the units named by the package, in parallel
		// (Figure 3c / Section VII-A's parallel warmup).
		preload := float64(len(p.Units)) * s.cfg.UnitPreloadCycles / cores
		total += preload
		s.chargeBG(telemetry.CycleUnitLoad, preload)
		for _, u := range p.Units {
			s.st.unitLoaded(u)
		}
		s.tel.Event(s.now, "server", "consumer-preload",
			telemetry.I("units", int64(len(p.Units))))
		// Compile every sufficiently-profiled function in optimized
		// mode on all cores (the "JIT optimized code" box of
		// Figure 3c).
		compileCycles := 0.0
		compiled := 0
		for _, name := range p.HotFunctionsMin(uint64(s.cfg.OptimizeMinEntries)) {
			fn, ok := s.site.Prog.FuncByName(name)
			if !ok {
				continue
			}
			tr, err := s.j.CompileOptimized(fn, p)
			if err != nil {
				continue // stale entries are skipped, not fatal
			}
			s.optTrans[name] = tr
			compiled++
			compileCycles += float64(len(fn.Code)) * s.cfg.Tier2CompileCPI
		}
		total += compileCycles / cores
		s.chargeBG(telemetry.CycleOptimize, compileCycles/cores)
		s.tel.Event(s.now, "server", "consumer-precompile",
			telemetry.I("funcs", int64(compiled)))
		// Relocate following the package's precomputed function order
		// (category 4, built from the seeded call graph) when the V-B
		// optimization is on; otherwise recompute locally from the
		// tier-1 call-target profiles.
		order := p.FuncOrder
		if !s.cfg.JITOpts.UseSeededCallGraph || len(order) == 0 {
			order = s.j.FunctionOrderWith(p,
				p.HotFunctionsMin(uint64(s.cfg.OptimizeMinEntries)), false)
		}
		relocBytes := 0
		for _, tr := range s.optTrans {
			relocBytes += tr.HotSize + tr.ColdSize
		}
		if err := s.j.RelocateOptimized(s.optTrans, order); err == nil {
			reloc := float64(relocBytes) * s.cfg.RelocCyclesPerByte / cores
			total += reloc
			s.chargeBG(telemetry.CycleReloc, reloc)
		}
		// Warmup requests run in parallel (Section VII-A).
		warmupCycles := s.runWarmupRequests() / cores
		total += warmupCycles
		s.chargeBG(telemetry.CycleWarmup, warmupCycles)
		return total

	default:
		// No Jump-Start (and seeder): warmup requests run
		// *sequentially* because the metadata load order matters
		// (Section VII-A).
		warmupCycles := s.runWarmupRequests()
		s.chargeBG(telemetry.CycleWarmup, warmupCycles)
		return warmupCycles
	}
}

// runWarmupRequests executes the configured warmup requests and
// returns their total cycle cost (the caller decides whether they were
// sequential or parallel).
func (s *Server) runWarmupRequests() float64 {
	total := 0.0
	for i := 0; i < s.cfg.WarmupRequests; i++ {
		req := s.traffic.Next()
		s.rt.BeginRequest(false)
		ep := s.site.Endpoints[req.Endpoint]
		if _, err := s.ip.Call(ep.Fn, req.Arg); err != nil {
			s.faults++
		}
		total += float64(s.rt.TakeCycles())
	}
	return total
}

// serveOne executes the next request and returns its cycle cost.
func (s *Server) serveOne() (uint64, error) {
	req := s.traffic.Next()
	s.reqCount++
	micro := s.reqCount%s.cfg.MicroSampleEvery == 0
	s.rt.BeginRequest(micro)
	if s.col != nil {
		s.col.BeginRequest()
	}
	ep := s.site.Endpoints[req.Endpoint]
	_, err := s.ip.Call(ep.Fn, req.Arg)
	cycles := s.rt.TakeCycles()
	s.totalCharged += float64(cycles)
	s.mRequests.Inc()
	if err != nil {
		s.mFaults.Inc()
	}
	s.hReqCycles.Observe(float64(cycles))

	switch s.phase {
	case PhaseProfiling:
		s.profiledReqs++
		if s.profiledReqs >= s.cfg.ProfileWindow {
			s.reachPointA()
		}
	case PhaseCollecting:
		s.collectReqs++
		if s.collectReqs >= s.cfg.SeederCollectWindow {
			s.sealSeederPackage()
		}
	}
	return cycles, err
}

// reachPointA stops profiling (Figure 1's point A) and queues tier-2
// compilation of every profiled function.
func (s *Server) reachPointA() {
	s.snapshot = s.col.Snapshot(prof.Meta{
		Region:   int32(s.cfg.Region),
		Bucket:   int32(s.cfg.Bucket),
		SeederID: int32(s.cfg.Seed),
	})
	s.col = nil
	s.applyTracer()
	for _, name := range s.snapshot.HotFunctionsMin(uint64(s.cfg.OptimizeMinEntries)) {
		if fn, ok := s.site.Prog.FuncByName(name); ok {
			s.optQueue = append(s.optQueue, fn)
		}
	}
	s.tel.Event(s.now, "server", "point-A",
		telemetry.I("profiled_reqs", int64(s.profiledReqs)),
		telemetry.I("opt_queue", int64(len(s.optQueue))))
	s.setPhase(PhaseOptimizing)
}

// advanceOptimization spends background cycles compiling queued tier-2
// jobs, then relocating (B→C). When done, optimized code activates and
// the phase advances.
func (s *Server) advanceOptimization(budget float64) {
	for budget > 0 && len(s.optQueue) > 0 {
		fn := s.optQueue[0]
		if s.optBudget == 0 {
			s.optBudget = float64(len(fn.Code)) * s.cfg.Tier2CompileCPI
		}
		if s.optBudget > budget {
			s.optBudget -= budget
			return
		}
		budget -= s.optBudget
		s.optBudget = 0
		s.optQueue = s.optQueue[1:]
		// The full job cost is attributed when the job completes; the
		// partial spends across earlier ticks sum to the same amount.
		s.chargeBG(telemetry.CycleOptimize, float64(len(fn.Code))*s.cfg.Tier2CompileCPI)
		if tr, err := s.j.CompileOptimized(fn, s.snapshot); err == nil {
			s.optTrans[fn.Name] = tr
			if s.relocBudget == 0 {
				s.relocBudget = -1 // sentinel: compute after all compiles
			}
		}
	}
	if len(s.optQueue) > 0 {
		return
	}
	// All compiled: relocation phase (B→C).
	if s.relocBudget < 0 {
		bytes := 0
		for _, tr := range s.optTrans {
			bytes += tr.HotSize + tr.ColdSize
		}
		s.relocBudget = float64(bytes) * s.cfg.RelocCyclesPerByte
		s.relocTotal = s.relocBudget
	}
	if s.relocBudget > budget {
		s.relocBudget -= budget
		return
	}
	// Point C: relocate and activate.
	s.chargeBG(telemetry.CycleReloc, s.relocTotal)
	order := s.j.FunctionOrder(s.snapshot,
		s.snapshot.HotFunctionsMin(uint64(s.cfg.OptimizeMinEntries)))
	if err := s.j.RelocateOptimized(s.optTrans, order); err != nil {
		s.liveFull = true
	}
	s.tel.Event(s.now, "server", "point-C",
		telemetry.I("optimized_funcs", int64(len(s.optTrans))))
	if s.cfg.Mode == ModeSeeder {
		s.setPhase(PhaseCollecting)
	} else {
		s.setPhase(PhaseServing)
	}
}

// sealSeederPackage harvests the tier-2 instrumentation, computes the
// function order, and freezes the package (Figure 3b's tail).
func (s *Server) sealSeederPackage() {
	p := s.snapshot
	p.Meta.RequestCount = int64(s.profiledReqs)
	s.rt.HarvestInto(p)
	// The package's precomputed order (profile category 4) is built
	// from the *accurate* tier-2 call graph — that is Section V-B's
	// contribution. Consumers with the optimization disabled recompute
	// a tier-1-graph order locally instead.
	p.FuncOrder = s.j.FunctionOrderWith(p,
		p.HotFunctionsMin(uint64(s.cfg.OptimizeMinEntries)), true)
	s.pkg = p
	s.tel.Event(s.now, "server", "package-sealed",
		telemetry.I("funcs", int64(len(p.Funcs))),
		telemetry.I("collect_reqs", int64(s.collectReqs)))
	s.setPhase(PhaseExited)
	s.ip.SetTracer(nil)
	s.ip.SetMemoizer(nil)
}
