package server

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"jumpstart/internal/telemetry"
)

// TestTelemetryZeroPerturbation pins the telemetry layer's hard
// requirement: attaching a full observation set must leave the
// simulation byte-identical — every tick stat and the seeder's
// serialized package — because instruments only observe (no PRNG
// draws, no floating-point reordering, no control-flow changes).
func TestTelemetryZeroPerturbation(t *testing.T) {
	site := testSite(t)

	runSeeder := func(tel *telemetry.Set) ([]TickStats, []byte) {
		cfg := testConfig(ModeSeeder)
		cfg.JITOpts.InstrumentOptimized = true
		cfg.Telem = tel
		s, err := New(site, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var ticks []TickStats
		for i := 0; i < 3600 && s.Phase() != PhaseExited; i++ {
			ticks = append(ticks, s.Tick())
		}
		pkg, ok := s.SeederPackage()
		if !ok {
			t.Fatal("seeder did not finish")
		}
		return ticks, pkg.Encode()
	}

	offTicks, offPkg := runSeeder(nil)
	tel := telemetry.NewSet()
	onTicks, onPkg := runSeeder(tel)

	if !bytes.Equal(offPkg, onPkg) {
		t.Fatal("telemetry perturbed the seeder package bytes")
	}
	if len(offTicks) != len(onTicks) {
		t.Fatalf("tick counts differ: %d vs %d", len(offTicks), len(onTicks))
	}
	for i := range offTicks {
		if offTicks[i] != onTicks[i] {
			t.Fatalf("tick %d diverged:\n  off %+v\n  on  %+v", i, offTicks[i], onTicks[i])
		}
	}
	// And the observed run must actually have observed something.
	if tel.Metrics.Counter("server.requests_total").Value() == 0 {
		t.Fatal("no requests recorded")
	}
	if tel.Trace.Len() == 0 {
		t.Fatal("no events recorded")
	}
	if tel.Cycles.Total() == 0 {
		t.Fatal("no cycles attributed")
	}
}

// TestCycleConservation checks the attribution profiler's accounting
// invariant over full warmups in every mode: the per-phase buckets
// must sum to the server's independently accumulated total of charged
// cycles (small relative epsilon — the two sums accumulate identical
// terms in different orders).
func TestCycleConservation(t *testing.T) {
	site := testSite(t)

	check := func(name string, s *Server, tel *telemetry.Set) {
		t.Helper()
		got, want := tel.Cycles.Total(), s.TotalCycles()
		if want == 0 {
			t.Fatalf("%s: no cycles charged", name)
		}
		if rel := math.Abs(got-want) / want; rel > 1e-9 {
			t.Fatalf("%s: profile total %v != charged total %v (rel %v)",
				name, got, want, rel)
		}
	}

	// Seeder: full pipeline through package sealing.
	seedTel := telemetry.NewSet()
	scfg := testConfig(ModeSeeder)
	scfg.JITOpts.InstrumentOptimized = true
	scfg.Telem = seedTel
	seeder, err := New(site, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := seeder.WarmToServing(7200); err != nil {
		t.Fatal(err)
	}
	check("seeder", seeder, seedTel)
	pkg, _ := seeder.SeederPackage()

	// No-Jump-Start: init + profiling + optimization + serving, then a
	// measurement pass (measurement cycles must stay conserved too).
	noTel := telemetry.NewSet()
	ncfg := testConfig(ModeNoJumpStart)
	ncfg.Telem = noTel
	noJS, err := New(site, ncfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := noJS.WarmToServing(7200); err != nil {
		t.Fatal(err)
	}
	noJS.MeasureSteady(50)
	check("nojumpstart", noJS, noTel)
	for _, b := range []telemetry.CycleBucket{
		telemetry.CycleInit, telemetry.CycleWarmup, telemetry.CycleTier1Compile,
		telemetry.CycleOptimize, telemetry.CycleInterp, telemetry.CycleJITExec,
	} {
		found := false
		for _, phase := range noTel.Cycles.Phases() {
			if noTel.Cycles.Bucket(phase, b) > 0 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("nojumpstart: bucket %v never charged", b)
		}
	}

	// Consumer: package load, bulk precompile, relocation, parallel
	// warmup — the coarse init-bucket path.
	conTel := telemetry.NewSet()
	ccfg := testConfig(ModeConsumer)
	ccfg.Package = pkg
	ccfg.Telem = conTel
	consumer, err := New(site, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := consumer.WarmToServing(7200); err != nil {
		t.Fatal(err)
	}
	check("consumer", consumer, conTel)
	for _, b := range []telemetry.CycleBucket{
		telemetry.CycleUnitLoad, telemetry.CycleOptimize, telemetry.CycleReloc,
	} {
		if conTel.Cycles.Bucket(PhaseInit.String(), b) == 0 {
			t.Errorf("consumer: init bucket %v never charged", b)
		}
	}

	// The folded export must reproduce the same total up to its
	// per-line integer rounding.
	var folded bytes.Buffer
	if err := noTel.Cycles.WriteFolded(&folded, "root"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(folded.String()), "\n")
	sum := 0.0
	for _, line := range lines {
		idx := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("bad folded line %q: %v", line, err)
		}
		sum += v
	}
	if diff := math.Abs(sum - noJS.TotalCycles()); diff > float64(len(lines)) {
		t.Fatalf("folded sum %v vs charged %v: diff %v exceeds rounding slack",
			sum, noJS.TotalCycles(), diff)
	}
}
