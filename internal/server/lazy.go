package server

import (
	"jumpstart/internal/bytecode"
	"jumpstart/internal/jit"
	"jumpstart/internal/telemetry"
)

// Pager materializes one function's optimized translation artifact in
// lazy warmup mode. PageIn returns the virtual cycles the fetch cost
// and whether the artifact arrived; a miss (budget exhausted, store
// unreachable) leaves the function on the interpreter/live-JIT path —
// lazy boots degrade, they do not fail. Implementations live above the
// server (jumpstart.LazyPager fetches over the transport); a nil Pager
// means page-ins are local and cost only the install.
type Pager interface {
	PageIn(fn string) (cycles float64, ok bool)
}

// LazyStats reports the lazy-warmup bookkeeping.
type LazyStats struct {
	Armed  int // hot functions marked for on-demand page-in at boot
	Paged  int // page-ins that landed an optimized translation
	Misses int // page-ins the pager failed; fell back to interp/live JIT
}

// LazyStats returns the lazy-warmup counters (zeros unless
// Config.LazyWarmup).
func (s *Server) LazyStats() LazyStats { return s.lazyStats }

// armLazyWarmup is the consumer startup path under LazyWarmup: instead
// of eagerly preloading, precompiling and relocating the package, it
// only marks every sufficiently-profiled function as pending page-in.
// The server starts serving immediately; each marked function's first
// call materializes its translation via lazyPageIn. Startup therefore
// costs nothing beyond InitCycles.
func (s *Server) armLazyWarmup() float64 {
	p := s.cfg.Package
	s.lazyPending = make([]bool, len(s.site.Prog.Funcs))
	for _, name := range p.HotFunctionsMin(uint64(s.cfg.OptimizeMinEntries)) {
		if fn, ok := s.site.Prog.FuncByName(name); ok && !s.lazyPending[fn.ID] {
			s.lazyPending[fn.ID] = true
			s.lazyStats.Armed++
		}
	}
	s.tel.Event(s.now, "server", "consumer-lazy-arm",
		telemetry.I("funcs", int64(s.lazyStats.Armed)))
	return 0
}

// lazyPageIn materializes fn's packaged translation on its first call:
// the pager fetches the artifact (charging its virtual fetch time to
// the running request), then the translation is installed at
// relocation cost — no tier-2 compile, the package already holds the
// optimized code. A pager miss is terminal for fn: it stays on the
// interpreter and the normal live-JIT path picks it up, with no retry
// storm against a degraded store.
func (s *Server) lazyPageIn(fn *bytecode.Function) {
	if s.cfg.Pager != nil {
		cycles, ok := s.cfg.Pager.PageIn(fn.Name)
		if cycles > 0 {
			s.rt.AddCyclesBucket(uint64(cycles), telemetry.CyclePageIn)
		}
		if !ok {
			s.lazyStats.Misses++
			s.tel.Counter("server.lazy_miss_total").Inc()
			s.tel.Event(s.now, "server", "lazy-pagein-miss",
				telemetry.S("fn", fn.Name))
			return
		}
	}
	tr, err := s.j.CompileOptimized(fn, s.cfg.Package)
	if err != nil {
		s.lazyStats.Misses++
		s.tel.Counter("server.lazy_miss_total").Inc()
		return
	}
	// Install one translation alone: relocation activates it, but —
	// unlike the eager path's whole-package relocation in call-graph
	// order — a function paged in by itself cannot share cache lines
	// with its callers. Worse steady-state locality is part of the
	// lazy tradeoff the experiments measure.
	if err := s.j.RelocateOptimized(
		map[string]*jit.Translation{fn.Name: tr}, []string{fn.Name}); err != nil {
		s.lazyStats.Misses++
		s.tel.Counter("server.lazy_miss_total").Inc()
		return
	}
	s.optTrans[fn.Name] = tr
	s.rt.AddCyclesBucket(
		uint64(float64(tr.HotSize+tr.ColdSize)*s.cfg.RelocCyclesPerByte),
		telemetry.CyclePageIn)
	s.lazyStats.Paged++
	s.tel.Counter("server.lazy_pagein_total").Inc()
}
