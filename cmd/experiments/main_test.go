package main

import (
	"strings"
	"testing"

	"jumpstart/internal/experiments"
)

// microConfig shrinks the quick configuration to smoke-test scale; the
// full figure set at experiment scale takes minutes.
func microConfig(bool) experiments.Config {
	cfg := experiments.Quick()
	cfg.SiteCfg.Units = 3
	cfg.SiteCfg.HelpersPerUnit = 4
	cfg.SiteCfg.EndpointsPerUnit = 2
	cfg.ServerCfg.Cores = 2
	cfg.ServerCfg.CompileThreads = 2
	cfg.ServerCfg.InitCycles = 3e6
	cfg.Horizon = 90
	cfg.LongHorizon = 180
	cfg.SteadyRequests = 150
	cfg.PushInterval = 300
	cfg.FleetCfg.ServersPerBucket = 8
	return cfg
}

func TestRunSingleFigure(t *testing.T) {
	orig := labConfig
	labConfig = microConfig
	defer func() { labConfig = orig }()

	var out strings.Builder
	if err := run([]string{"-fig", "2", "-workers", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "## Figure 2:") {
		t.Fatalf("missing figure body:\n%s", s)
	}
	if !strings.Contains(s, "# capacity loss over the window") {
		t.Fatalf("missing summary:\n%s", s)
	}
}

func TestRunTune(t *testing.T) {
	orig := labConfig
	labConfig = microConfig
	defer func() { labConfig = orig }()

	var out strings.Builder
	if err := run([]string{"-tune", "-workers", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	// The beats-default property is pinned at quick scale by the
	// experiments package tests; at smoke scale the knobs can tie, so
	// only the table structure is asserted here.
	for _, want := range []string{
		"## Tune: SLO-driven policy search",
		"# recommendation: push=",
		"# tuned beats default p99 capacity loss on ",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
}

// TestRunFlagValidation: nonsense flags must fail fast, before any
// measurement starts.
func TestRunFlagValidation(t *testing.T) {
	orig := labConfig
	labConfig = func(bool) experiments.Config {
		t.Fatal("validation must reject flags before the lab is built")
		return experiments.Quick()
	}
	defer func() { labConfig = orig }()

	cases := [][]string{
		{"-fig", "nonsense"},
		{"-sweep", "-3"},
		{"-replay-cache", "maybe"},
		{"-tune", "-sweep", "2"},
	}
	for _, args := range cases {
		var out strings.Builder
		err := run(args, &out)
		if err == nil {
			t.Errorf("%v accepted", args)
			continue
		}
		if !strings.Contains(err.Error(), "usage") {
			t.Errorf("%v: error %q has no usage pointer", args, err)
		}
	}
}
