// Command experiments regenerates the paper's evaluation figures from
// the simulation, printing the same rows/series the paper reports.
// Figures run concurrently on the parallel engine (internal/parallel);
// output is byte-identical at every -workers value.
//
// Usage:
//
//	experiments -fig all            # everything (slow)
//	experiments -fig 1              # Figure 1: code size over time
//	experiments -fig 2              # Figure 2: restart capacity loss
//	experiments -fig 4              # Figures 4a/4b: warmup comparison
//	experiments -fig 5              # Figure 5: steady-state + µarch
//	experiments -fig 6              # Figure 6: optimization ablations
//	experiments -fig lifespan       # §II-B lifespan fractions
//	experiments -fig reliability    # §VI crash-loop dynamics
//	experiments -fig fleet          # C1/C2/C3 fleet deployment
//	experiments -fig churn          # continuous deployment + cross-release remap
//	experiments -fig regions        # multi-region stores + seeder aggregation
//	experiments -fig warmclass      # changepoint warmup classification + SLO report
//	experiments -fig pool           # standby warm pool + lazy package paging
//	experiments -fig scenario       # dynamic traffic + heterogeneous fleets
//	experiments -tune               # SLO-driven policy autotuner (successive halving)
//	experiments -quick              # reduced scale (faster, noisier)
//	experiments -workers 1          # sequential (byte-identical output)
//	experiments -sweep 5 -seed 42   # 5-seed repetition study (mean/min/max)
//	experiments -replay-cache off   # disable the host-side replay memoization
//	                                # (same figures, slower — A/B harness)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"jumpstart/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// labConfig resolves the measurement configuration. It is a variable
// so the smoke test can substitute a micro-scale config; full-scale
// figure generation is far too slow for the test suite.
var labConfig = func(quick bool) experiments.Config {
	if quick {
		return experiments.Quick()
	}
	return experiments.Default()
}

// run executes the harness; main is only flag-error plumbing so tests
// can drive the binary end to end in-process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fig := fs.String("fig", "all", "which figure to regenerate (1, 2, 4, 5, 6, lifespan, reliability, fleet, brownout, churn, regions, warmclass, pool, scenario, all)")
	quick := fs.Bool("quick", false, "use the reduced-scale configuration")
	workers := fs.Int("workers", 0, "parallel fan-out width (<= 0: one worker per CPU)")
	sweep := fs.Int("sweep", 0, "run an N-seed sweep of the headline metrics instead of single-seed figures")
	seed := fs.Uint64("seed", 1, "base seed for -sweep (per-seed streams are forked from it)")
	tune := fs.Bool("tune", false, "run the SLO-driven policy autotuner instead of figures")
	replayCache := fs.String("replay-cache", "on", "translation replay memoization: on | off (host-side speedup; figure output is byte-identical either way)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *replayCache != "on" && *replayCache != "off" {
		return fmt.Errorf("-replay-cache must be on or off, got %q (see experiments -h for usage)", *replayCache)
	}
	if *sweep < 0 {
		return fmt.Errorf("-sweep must be >= 0 (see experiments -h for usage)")
	}
	if *fig != "all" && !experiments.KnownFigure(*fig) {
		return fmt.Errorf("unknown figure %q (see experiments -h for usage)", *fig)
	}
	if *tune && *sweep > 0 {
		return fmt.Errorf("-tune and -sweep are mutually exclusive (see experiments -h for usage)")
	}

	cfg := labConfig(*quick)
	cfg.Workers = *workers
	cfg.ServerCfg.ReplayCache = *replayCache == "on"

	out := bufio.NewWriter(stdout)
	defer out.Flush()

	fmt.Fprintf(out, "# HHVM Jump-Start reproduction — experiment harness\n")
	fmt.Fprintf(out, "# site: %d units, offered load %.0f RPS, horizon %.0fs (quick=%v, workers=%d)\n",
		cfg.SiteCfg.Units, cfg.ServerCfg.OfferedRPS, cfg.Horizon, *quick, *workers)

	if *sweep > 0 {
		fmt.Fprintf(out, "# sweeping %d seeds from base %d...\n\n", *sweep, *seed)
		out.Flush()
		res, err := experiments.Sweep(cfg, *seed, *sweep)
		if err != nil {
			return err
		}
		experiments.WriteSweep(out, res)
		return nil
	}

	figs := []string{*fig}
	if *fig == "all" {
		figs = experiments.FigureOrder
	}
	fmt.Fprintf(out, "# building site and seeding profile package...\n\n")
	out.Flush()

	lab, err := experiments.NewLab(cfg)
	if err != nil {
		return err
	}
	if *tune {
		return lab.WriteTune(out)
	}
	return lab.RunFigures(out, figs, cfg.Workers)
}
