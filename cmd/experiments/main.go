// Command experiments regenerates the paper's evaluation figures from
// the simulation, printing the same rows/series the paper reports.
//
// Usage:
//
//	experiments -fig all            # everything (slow)
//	experiments -fig 1              # Figure 1: code size over time
//	experiments -fig 2              # Figure 2: restart capacity loss
//	experiments -fig 4              # Figures 4a/4b: warmup comparison
//	experiments -fig 5              # Figure 5: steady-state + µarch
//	experiments -fig 6              # Figure 6: optimization ablations
//	experiments -fig lifespan       # §II-B lifespan fractions
//	experiments -fig reliability    # §VI crash-loop dynamics
//	experiments -fig fleet          # C1/C2/C3 fleet deployment
//	experiments -quick              # reduced scale (faster, noisier)
package main

import (
	"flag"
	"fmt"
	"os"

	"jumpstart/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate (1, 2, 4, 5, 6, lifespan, reliability, fleet, all)")
	quick := flag.Bool("quick", false, "use the reduced-scale configuration")
	flag.Parse()

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	fmt.Printf("# HHVM Jump-Start reproduction — experiment harness\n")
	fmt.Printf("# site: %d units, offered load %.0f RPS, horizon %.0fs (quick=%v)\n",
		cfg.SiteCfg.Units, cfg.ServerCfg.OfferedRPS, cfg.Horizon, *quick)
	fmt.Printf("# building site and seeding profile package...\n\n")

	lab, err := experiments.NewLab(cfg)
	if err != nil {
		fatal(err)
	}

	run := map[string]bool{}
	if *fig == "all" {
		for _, f := range []string{"1", "2", "4", "5", "6", "lifespan", "reliability", "fleet"} {
			run[f] = true
		}
	} else {
		run[*fig] = true
	}

	if run["1"] {
		fig1(lab)
	}
	if run["2"] {
		fig2(lab)
	}
	if run["4"] {
		fig4(lab)
	}
	if run["5"] {
		fig5(lab)
	}
	if run["6"] {
		fig6(lab)
	}
	if run["lifespan"] {
		lifespan(lab)
	}
	if run["reliability"] {
		reliability(lab)
	}
	if run["fleet"] {
		fleet(lab)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

func fig1(lab *experiments.Lab) {
	res, err := lab.Fig1()
	if err != nil {
		fatal(err)
	}
	fmt.Println("## Figure 1: JITed code size over time (no Jump-Start)")
	fmt.Println("t_seconds,code_bytes,phase")
	for i, p := range res.Points {
		if i%4 == 0 || i == len(res.Points)-1 {
			fmt.Printf("%.0f,%d,%s\n", p.T, p.CodeBytes, p.Phase)
		}
	}
	fmt.Printf("# A (profiling stops) = %.0fs; C (optimized live) = %.0fs; D (plateau) = %.0fs; final = %s\n",
		res.PointA, res.PointC, res.PointD, experiments.FormatBytesMB(res.Final))
	fmt.Printf("# paper: A≈6min, C≈12min, D≈25min, ~500 MB (absolute values scale with site size)\n\n")
}

func fig2(lab *experiments.Lab) {
	res, err := lab.Fig2()
	if err != nil {
		fatal(err)
	}
	fmt.Println("## Figure 2: server capacity loss due to restart and warmup")
	fmt.Println("t_seconds,normalized_rps")
	for i, p := range res.Normalized {
		if i%4 == 0 || i == len(res.Normalized)-1 {
			fmt.Printf("%.0f,%.3f\n", p[0], p[1])
		}
	}
	fmt.Printf("# capacity loss over the window = %.1f%% (area above the curve)\n\n",
		res.CapacityLoss*100)
}

func fig4(lab *experiments.Lab) {
	res, err := lab.Fig4()
	if err != nil {
		fatal(err)
	}
	fmt.Println("## Figure 4a: average latency (ms) per request over uptime")
	fmt.Println("t_seconds,jumpstart_ms,nojumpstart_ms")
	byT := map[float64][2]float64{}
	for _, p := range res.LatencyJS {
		e := byT[p[0]]
		e[0] = p[1]
		byT[p[0]] = e
	}
	for _, p := range res.LatencyNoJS {
		e := byT[p[0]]
		e[1] = p[1]
		byT[p[0]] = e
	}
	for _, p := range res.LatencyNoJS {
		e := byT[p[0]]
		fmt.Printf("%.0f,%.1f,%.1f\n", p[0], e[0], e[1])
	}
	fmt.Printf("# early latency ratio (no-JS / JS) = %.1fx (paper: ~3x)\n\n", res.EarlyLatencyRatio)

	fmt.Println("## Figure 4b: normalized RPS over uptime")
	fmt.Println("t_seconds,jumpstart,nojumpstart")
	n := len(res.NoJumpStart.Normalized)
	for i := 0; i < n; i++ {
		tm := res.NoJumpStart.Normalized[i][0]
		js := 0.0
		for _, p := range res.JumpStart.Normalized {
			if p[0] == tm {
				js = p[1]
			}
		}
		fmt.Printf("%.0f,%.3f,%.3f\n", tm, js, res.NoJumpStart.Normalized[i][1])
	}
	fmt.Printf("# capacity loss: jumpstart=%.1f%% (paper 35.3%%), no-jumpstart=%.1f%% (paper 78.3%%)\n",
		res.JumpStart.CapacityLoss*100, res.NoJumpStart.CapacityLoss*100)
	fmt.Printf("# HEADLINE capacity-loss reduction = %.1f%% (paper: 54.9%%)\n\n", res.LossReduction*100)
}

func fig5(lab *experiments.Lab) {
	res, err := lab.Fig5()
	if err != nil {
		fatal(err)
	}
	fmt.Println("## Figure 5: steady-state speedup and miss reductions (Jump-Start vs no Jump-Start)")
	fmt.Println("metric,measured_pct,paper_pct")
	fmt.Printf("speedup,%.2f,5.4\n", res.SpeedupPct)
	fmt.Printf("branch_miss_reduction,%.1f,6.8\n", res.BranchMR)
	fmt.Printf("icache_miss_reduction,%.1f,6.2\n", res.L1IMR)
	fmt.Printf("itlb_miss_reduction,%.1f,20.8\n", res.ITLBMR)
	fmt.Printf("dcache_miss_reduction,%.1f,1.4\n", res.L1DMR)
	fmt.Printf("dtlb_miss_reduction,%.1f,12.1\n", res.DTLBMR)
	fmt.Printf("llc_miss_reduction,%.1f,3.5\n", res.LLCMR)
	fmt.Printf("# capacities: JS=%.0f RPS, no-JS=%.0f RPS\n\n",
		res.JumpStart.CapacityRPS, res.NoJumpStart.CapacityRPS)
}

func fig6(lab *experiments.Lab) {
	res, err := lab.Fig6()
	if err != nil {
		fatal(err)
	}
	fmt.Println("## Figure 6: speedups over Jump-Start-without-optimizations")
	fmt.Println("configuration,measured_pct,paper_pct")
	fmt.Printf("no_jumpstart,%.2f,-0.2\n", res.NoJumpStartPct)
	fmt.Printf("bb_layout(V-A),%.2f,3.8\n", res.BBLayoutPct)
	fmt.Printf("func_layout(V-B),%.2f,0.75\n", res.FuncLayoutPct)
	fmt.Printf("prop_reorder(V-C),%.2f,0.8\n", res.PropReorderPct)
	fmt.Printf("# baseline capacity = %.0f RPS\n\n", res.BaselineRPS)
}

func lifespan(lab *experiments.Lab) {
	res, err := lab.Lifespan()
	if err != nil {
		fatal(err)
	}
	fmt.Println("## §II-B: lifespan fractions under continuous deployment")
	fmt.Printf("to_decent_performance,%.1f%%,paper 13%%\n", res.ToDecent*100)
	fmt.Printf("to_peak_performance,%.1f%%,paper 32%%\n\n", res.ToPeak*100)
}

func reliability(lab *experiments.Lab) {
	res, err := lab.Reliability()
	if err != nil {
		fatal(err)
	}
	fmt.Println("## §VI: reliability under defective packages")
	fmt.Printf("crashes=%d fallbacks=%d final_capacity=%.3f\n",
		res.Crashes, res.Fallbacks, res.FinalCap)
	fmt.Printf("fleet capacity loss: clean=%.2f%% with_defects=%.2f%%\n\n",
		res.LossNoDefect*100, res.LossDefect*100)
}

func fleet(lab *experiments.Lab) {
	lossJS, lossNoJS, err := lab.FleetDeploy()
	if err != nil {
		fatal(err)
	}
	fmt.Println("## Fleet: C1/C2/C3 deployment capacity loss")
	fmt.Printf("jumpstart=%.2f%% nojumpstart=%.2f%% reduction=%.1f%%\n\n",
		lossJS*100, lossNoJS*100, (1-lossJS/lossNoJS)*100)
}
