// Command experiments regenerates the paper's evaluation figures from
// the simulation, printing the same rows/series the paper reports.
// Figures run concurrently on the parallel engine (internal/parallel);
// output is byte-identical at every -workers value.
//
// Usage:
//
//	experiments -fig all            # everything (slow)
//	experiments -fig 1              # Figure 1: code size over time
//	experiments -fig 2              # Figure 2: restart capacity loss
//	experiments -fig 4              # Figures 4a/4b: warmup comparison
//	experiments -fig 5              # Figure 5: steady-state + µarch
//	experiments -fig 6              # Figure 6: optimization ablations
//	experiments -fig lifespan       # §II-B lifespan fractions
//	experiments -fig reliability    # §VI crash-loop dynamics
//	experiments -fig fleet          # C1/C2/C3 fleet deployment
//	experiments -fig churn          # continuous deployment + cross-release remap
//	experiments -fig regions        # multi-region stores + seeder aggregation
//	experiments -fig warmclass      # changepoint warmup classification + SLO report
//	experiments -fig pool           # standby warm pool + lazy package paging
//	experiments -quick              # reduced scale (faster, noisier)
//	experiments -workers 1          # sequential (byte-identical output)
//	experiments -sweep 5 -seed 42   # 5-seed repetition study (mean/min/max)
//	experiments -replay-cache off   # disable the host-side replay memoization
//	                                # (same figures, slower — A/B harness)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"jumpstart/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate (1, 2, 4, 5, 6, lifespan, reliability, fleet, brownout, churn, regions, warmclass, pool, all)")
	quick := flag.Bool("quick", false, "use the reduced-scale configuration")
	workers := flag.Int("workers", 0, "parallel fan-out width (<= 0: one worker per CPU)")
	sweep := flag.Int("sweep", 0, "run an N-seed sweep of the headline metrics instead of single-seed figures")
	seed := flag.Uint64("seed", 1, "base seed for -sweep (per-seed streams are forked from it)")
	replayCache := flag.String("replay-cache", "on", "translation replay memoization: on | off (host-side speedup; figure output is byte-identical either way)")
	flag.Parse()

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Workers = *workers
	if *replayCache != "on" && *replayCache != "off" {
		fatal(fmt.Errorf("-replay-cache must be on or off, got %q", *replayCache))
	}
	cfg.ServerCfg.ReplayCache = *replayCache == "on"

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	fmt.Fprintf(out, "# HHVM Jump-Start reproduction — experiment harness\n")
	fmt.Fprintf(out, "# site: %d units, offered load %.0f RPS, horizon %.0fs (quick=%v, workers=%d)\n",
		cfg.SiteCfg.Units, cfg.ServerCfg.OfferedRPS, cfg.Horizon, *quick, *workers)

	if *sweep > 0 {
		fmt.Fprintf(out, "# sweeping %d seeds from base %d...\n\n", *sweep, *seed)
		out.Flush()
		res, err := experiments.Sweep(cfg, *seed, *sweep)
		if err != nil {
			fatal(err)
		}
		experiments.WriteSweep(out, res)
		return
	}

	figs := []string{*fig}
	if *fig == "all" {
		figs = experiments.FigureOrder
	} else if !experiments.KnownFigure(*fig) {
		fatal(fmt.Errorf("unknown figure %q", *fig))
	}
	fmt.Fprintf(out, "# building site and seeding profile package...\n\n")
	out.Flush()

	lab, err := experiments.NewLab(cfg)
	if err != nil {
		fatal(err)
	}
	if err := lab.RunFigures(out, figs, cfg.Workers); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
