// Command hackc compiles MiniHack source files to MiniHack bytecode
// and prints the disassembly — the offline half of the VM's pipeline
// (the paper's repo-authoritative build).
//
// Usage:
//
//	hackc [-O] [-run fn] file1.mh [file2.mh ...]
//
// Flags:
//
//	-O       enable the offline optimizer (constant folding, DCE, ...)
//	-run fn  after compiling, execute free function fn() and print the result
package main

import (
	"flag"
	"fmt"
	"os"

	"jumpstart/internal/hackc"
	"jumpstart/internal/interp"
	"jumpstart/internal/object"
)

func main() {
	optimize := flag.Bool("O", false, "enable the offline bytecode optimizer")
	run := flag.String("run", "", "execute this zero-argument function after compiling")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: hackc [-O] [-run fn] file.mh ...")
		os.Exit(2)
	}
	sources := map[string]string{}
	var names []string
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		sources[path] = string(data)
		names = append(names, path)
	}
	prog, err := hackc.CompileSources(sources, names, hackc.Options{Optimize: *optimize})
	if err != nil {
		fatal(err)
	}
	fmt.Print(prog.Disasm())
	fmt.Printf("; %d functions, %d classes, %d bytecode bytes\n",
		len(prog.Funcs), len(prog.Classes), prog.TotalBytecodeSize())

	if *run != "" {
		reg, err := object.NewRegistry(prog, nil)
		if err != nil {
			fatal(err)
		}
		ip := interp.New(prog, reg, interp.Config{Out: os.Stdout})
		v, err := ip.CallByName(*run)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s() = %s\n", *run, v.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hackc:", err)
	os.Exit(1)
}
