// Command hackc compiles MiniHack source files to MiniHack bytecode
// and prints the disassembly — the offline half of the VM's pipeline
// (the paper's repo-authoritative build).
//
// Usage:
//
//	hackc [-O] [-run fn] file1.mh [file2.mh ...]
//
// Flags:
//
//	-O       enable the offline optimizer (constant folding, DCE, ...)
//	-run fn  after compiling, execute free function fn() and print the result
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"jumpstart/internal/hackc"
	"jumpstart/internal/interp"
	"jumpstart/internal/object"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hackc:", err)
		os.Exit(1)
	}
}

// run executes the compiler; main is only flag-error plumbing so tests
// can drive the binary end to end in-process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hackc", flag.ContinueOnError)
	optimize := fs.Bool("O", false, "enable the offline bytecode optimizer")
	runFn := fs.String("run", "", "execute this zero-argument function after compiling")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if fs.NArg() == 0 {
		return fmt.Errorf("usage: hackc [-O] [-run fn] file.mh ...")
	}
	sources := map[string]string{}
	var names []string
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		sources[path] = string(data)
		names = append(names, path)
	}
	prog, err := hackc.CompileSources(sources, names, hackc.Options{Optimize: *optimize})
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, prog.Disasm())
	fmt.Fprintf(stdout, "; %d functions, %d classes, %d bytecode bytes\n",
		len(prog.Funcs), len(prog.Classes), prog.TotalBytecodeSize())

	if *runFn != "" {
		reg, err := object.NewRegistry(prog, nil)
		if err != nil {
			return err
		}
		ip := interp.New(prog, reg, interp.Config{Out: stdout})
		v, err := ip.CallByName(*runFn)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s() = %s\n", *runFn, v.String())
	}
	return nil
}
