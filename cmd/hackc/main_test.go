package main

import (
	"strings"
	"testing"
)

func TestRunCompileAndExecute(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-O", "-run", "main", "../../testdata/fib.mh"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "functions") {
		t.Fatalf("missing summary line:\n%s", got)
	}
	if !strings.Contains(got, "main() =") {
		t.Fatalf("missing execution result:\n%s", got)
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("no args must error")
	}
	if err := run([]string{"/nonexistent/x.mh"}, &out); err == nil {
		t.Fatal("missing file must error")
	}
}
