// Command fleetsim simulates a fleet-wide continuous-deployment push
// (C1 → C2 → C3) with or without Jump-Start, printing the fleet
// capacity time series and the capacity-loss summary, plus an optional
// defective-package reliability injection (Section VI).
//
// Usage:
//
//	fleetsim                        # one push with Jump-Start
//	fleetsim -nojumpstart           # one push without
//	fleetsim -defects 0.5           # inject defective packages
//	fleetsim -transport             # fetch packages over the simulated network
//	fleetsim -transport -brownout-start 250 -brownout-seconds 1200 \
//	         -brownout-drop 0.97    # store brownout during the C3 fetch storm
//
// Multi-region sharded stores (replication, failover, seeder aggregation):
//
//	fleetsim -replicas 2                              # 2-way replicated per-region store shards
//	fleetsim -replicas 2 -regions 4 -store-nodes 3 \
//	         -aggregate 2 -propagate-every 60         # consensus packages + cross-region propagation
//
// Continuous deployment under code churn:
//
//	fleetsim -push-every 480                          # a push every 480 virtual seconds
//	fleetsim -push-every 480 -churn 0.1 \
//	         -remap-policy remap-tolerant             # carry packages across pushes via the remapper
//
// Standby warm pool and lazy package paging:
//
//	fleetsim -pool-size 32                            # C3 waves swap in pre-booted standbys
//	fleetsim -pool-size 32 -pool-backfill 0.05        # throttle pool re-admission
//	fleetsim -warmup-mode lazy                        # consumers serve immediately and
//	                                                  # page translations in on first call
//
// Dynamic traffic scenarios and heterogeneous hardware:
//
//	fleetsim -scenario diurnal                        # phase-shifted per-region demand waves
//	fleetsim -scenario flashcrowd                     # a spike ramps, holds, decays
//	fleetsim -scenario failover                       # one region goes dark mid-push;
//	                                                  # survivors absorb its demand
//	fleetsim -geometry mixed                          # two hardware classes; cross-geometry
//	                                                  # boots replay a stretched warmup curve
//
// Telemetry (all optional, zero simulation perturbation):
//
//	-trace out.jsonl        # fleet + warmup-measurement event trace
//	-metrics out.json       # metrics registry snapshot
//	-cycleprof out.folded   # warmup-measurement cycle profile
//	-spans boot.json        # causal boot-span trace; .json = Chrome
//	                        # trace_event (load in ui.perfetto.dev),
//	                        # any other extension = JSONL
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"jumpstart/internal/cluster"
	"jumpstart/internal/experiments"
	"jumpstart/internal/jumpstart"
	"jumpstart/internal/jumpstart/transport"
	"jumpstart/internal/netsim"
	"jumpstart/internal/obs"
	"jumpstart/internal/scenario"
	"jumpstart/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
}

// usageErr formats a flag-validation error with a usage pointer, so
// nonsense values exit non-zero with a hint instead of silently
// misbehaving deep in the simulation.
func usageErr(format string, args ...any) error {
	return fmt.Errorf(format+" (see fleetsim -h for usage)", args...)
}

// labConfig resolves the measurement configuration. It is a variable
// so the smoke test can substitute a micro-scale config; the curve
// measurement at real scale is far too slow for the test suite.
var labConfig = func(quick bool) experiments.Config {
	if quick {
		return experiments.Quick()
	}
	return experiments.Default()
}

// run executes the simulation; main is only flag-error plumbing so
// tests can drive the binary end to end in-process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fleetsim", flag.ContinueOnError)
	noJS := fs.Bool("nojumpstart", false, "disable Jump-Start fleet-wide")
	defects := fs.Float64("defects", 0, "probability a seeder produces a crash-inducing package")
	quick := fs.Bool("quick", true, "use the reduced-scale measurement configuration")
	seconds := fs.Float64("seconds", 0, "fleet-sim duration (0 = 6x warmup horizon)")
	tracePath := fs.String("trace", "", "write the structured event trace as JSONL")
	metricsPath := fs.String("metrics", "", "write the metrics registry snapshot as JSON")
	cycleProf := fs.String("cycleprof", "", "write the virtual-cycle profile as folded stacks")
	spansPath := fs.String("spans", "", "write the causal boot-span trace (.json = Chrome trace_event for Perfetto, else JSONL)")
	useTransport := fs.Bool("transport", false, "route package publishes/fetches through the networked store over the simulated fabric")
	netLatency := fs.Float64("net-latency", 0, "base one-way store RPC latency, virtual seconds")
	fetchBudget := fs.Float64("fetch-budget", 30, "per-boot fetch deadline budget, virtual seconds")
	brownStart := fs.Float64("brownout-start", 0, "store brownout start, virtual seconds (0 = none)")
	brownSecs := fs.Float64("brownout-seconds", 0, "store brownout duration")
	brownDrop := fs.Float64("brownout-drop", 0.95, "store RPC drop rate during the brownout")
	replayCache := fs.String("replay-cache", "on", "translation replay memoization for the curve-measurement servers: on | off (output is byte-identical either way)")
	regions := fs.Int("regions", 0, "override the number of fleet regions (0 = measurement-config default)")
	replicas := fs.Int("replicas", 0, "K-way replication per store shard; > 0 routes packages through the multi-region sharded store hierarchy")
	storeNodes := fs.Int("store-nodes", 3, "store nodes per region shard (with -replicas)")
	aggregate := fs.Int("aggregate", 0, "publish one consensus package per N seeder outputs (with -replicas; 0 = every seeder publishes its own)")
	propagateEvery := fs.Float64("propagate-every", 60, "cross-region package propagation cadence, virtual seconds (with -replicas)")
	interLatency := fs.Float64("inter-latency", 0.3, "base one-way long-haul RPC latency between regions, virtual seconds (with -replicas)")
	pushEvery := fs.Float64("push-every", 0, "start a new deployment every N virtual seconds (0 = the single initial push only)")
	churn := fs.Float64("churn", 0, "code-churn mutation rate per push; > 0 measures the real remap hit rate and remapped warmup curve on a mutated site")
	remapPolicy := fs.String("remap-policy", "exact-only", "store compatibility policy at a push: exact-only | remap-tolerant")
	poolSize := fs.Int("pool-size", 0, "standby warm-pool size: pre-booted consumers swapped in during C3 waves (0 = off)")
	poolBackfill := fs.Float64("pool-backfill", 0, "max rebooted instances re-admitted to the pool per virtual second (0 = unthrottled)")
	warmupMode := fs.String("warmup-mode", "eager", "consumer warmup: eager | lazy (lazy boots serve immediately and replay the measured on-demand page-in curve)")
	scenarioName := fs.String("scenario", "steady", "dynamic traffic scenario: steady | diurnal | flashcrowd | failover")
	geometry := fs.String("geometry", "uniform", "fleet hardware mix: uniform | mixed (two geometry classes; cross-geometry boots replay a stretched Jump-Start curve)")
	geomStretch := fs.Float64("geometry-stretch", 1.25, "warmup slowdown factor for cross-geometry boots (with -geometry mixed)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *replayCache != "on" && *replayCache != "off" {
		return usageErr("-replay-cache must be on or off, got %q", *replayCache)
	}
	policy, err := jumpstart.ParseCompatPolicy(*remapPolicy)
	if err != nil {
		return usageErr("%v", err)
	}
	wmode, err := jumpstart.ParseWarmupMode(*warmupMode)
	if err != nil {
		return usageErr("%v", err)
	}
	kind, err := scenario.ParseKind(*scenarioName)
	if err != nil {
		return usageErr("%v", err)
	}
	if *geometry != "uniform" && *geometry != "mixed" {
		return usageErr("-geometry must be uniform or mixed, got %q", *geometry)
	}
	for _, c := range []struct {
		bad  bool
		name string
		msg  string
	}{
		{*defects < 0 || *defects > 1, "-defects", "must be in [0, 1]"},
		{*seconds < 0, "-seconds", "must be >= 0"},
		{*netLatency < 0, "-net-latency", "must be >= 0"},
		{*fetchBudget <= 0, "-fetch-budget", "must be > 0"},
		{*brownStart < 0, "-brownout-start", "must be >= 0"},
		{*brownSecs < 0, "-brownout-seconds", "must be >= 0"},
		{*brownDrop < 0 || *brownDrop > 1, "-brownout-drop", "must be in [0, 1]"},
		{*regions < 0, "-regions", "must be >= 0"},
		{*replicas < 0, "-replicas", "must be >= 0"},
		{*storeNodes <= 0, "-store-nodes", "must be > 0"},
		{*aggregate < 0, "-aggregate", "must be >= 0"},
		{*propagateEvery <= 0, "-propagate-every", "must be > 0"},
		{*interLatency < 0, "-inter-latency", "must be >= 0"},
		{*pushEvery < 0, "-push-every", "must be >= 0"},
		{*churn < 0 || *churn > 1, "-churn", "must be in [0, 1]"},
		{*poolSize < 0, "-pool-size", "must be >= 0"},
		{*poolBackfill < 0, "-pool-backfill", "must be >= 0"},
		{*geomStretch < 1, "-geometry-stretch", "must be >= 1"},
	} {
		if c.bad {
			return usageErr("%s %s", c.name, c.msg)
		}
	}

	cfg := labConfig(*quick)
	cfg.ServerCfg.ReplayCache = *replayCache == "on"
	var tel *telemetry.Set
	if *tracePath != "" || *metricsPath != "" || *cycleProf != "" || *spansPath != "" {
		tel = telemetry.NewSet()
		if *spansPath != "" {
			// A full deployment's span tree outgrows the default ring;
			// a roomy one keeps parents resident for their children.
			tel.Trace = telemetry.NewTrace(1 << 17)
		}
		// The curve-measurement servers and the fleet run strictly
		// sequentially here, so they can share one single-writer set.
		cfg.ServerCfg.Telem = tel
	}
	fmt.Fprintln(stdout, "# measuring single-server warmup curves (detailed simulation)...")
	lab, err := experiments.NewLab(cfg)
	if err != nil {
		return err
	}
	jsCurve, noCurve, err := lab.FleetCurves()
	if err != nil {
		return err
	}

	fcfg := cfg.FleetCfg
	fcfg.CurveJumpStart = jsCurve
	fcfg.CurveNoJumpStart = noCurve
	fcfg.JumpStartEnabled = !*noJS
	fcfg.DefectRate = *defects
	fcfg.Telem = tel
	fcfg.PushEvery = *pushEvery
	fcfg.RemapPolicy = policy
	fcfg.PoolSize = *poolSize
	fcfg.PoolBackfillRate = *poolBackfill
	if wmode == jumpstart.WarmupLazy {
		fmt.Fprintln(stdout, "# measuring lazy warmup curve (on-demand page-ins over the fabric)...")
		lc, err := lab.MeasureLazyCurve(netsim.Config{BaseLatency: *netLatency})
		if err != nil {
			return err
		}
		fcfg.WarmupMode = wmode
		fcfg.CurveLazy = lc.Curve
		fmt.Fprintf(stdout, "# lazy boot: armed=%d paged=%d page-ins=%d misses=%d\n",
			lc.Stats.Armed, lc.Stats.Paged, lc.PageIns, lc.Misses)
	}
	if *churn > 0 {
		fmt.Fprintf(stdout, "# measuring remap hit rate and remapped warmup at churn rate %.2f...\n", *churn)
		cr, err := lab.MeasureChurn(*churn)
		if err != nil {
			return err
		}
		fcfg.CurveRemapped = cr.Curve
		fcfg.RemapHitRate = cr.Remap1.HitRate()
		fmt.Fprintf(stdout, "# remap: exact=%d renamed=%d fuzzy=%d dropped=%d (hit rate %.1f%%), remapped warmup loss=%.1f%%\n",
			cr.Remap1.Exact, cr.Remap1.Renamed, cr.Remap1.Fuzzy,
			cr.Remap1.Dropped+cr.Remap1.Ambiguous, cr.Remap1.HitRate()*100, cr.LossRemapped*100)
	} else if policy == jumpstart.RemapTolerant {
		// No mutated-site measurement requested: carry every package.
		fcfg.RemapHitRate = 1
	}
	if *useTransport || *brownStart > 0 || *netLatency > 0 {
		net := netsim.Config{BaseLatency: *netLatency}
		if *brownStart > 0 && *brownSecs > 0 {
			net.Faults = append(net.Faults,
				netsim.Brownout(*brownStart, *brownStart+*brownSecs, *brownDrop, *netLatency))
		}
		ccfg := transport.DefaultClientConfig()
		ccfg.Budget = *fetchBudget
		fcfg.Transport = &cluster.TransportConfig{Net: net, Client: ccfg}
	}
	if *regions > 0 {
		fcfg.Regions = *regions
	}
	dur := *seconds
	if dur == 0 {
		dur = 6 * cfg.Horizon
	}
	if kind != scenario.Steady {
		eng, err := scenario.New(scenario.DefaultConfig(kind, fcfg.Regions, dur))
		if err != nil {
			return err
		}
		fcfg.Scenario = eng
		// Boots that absorb a failed-over region's load warm under
		// extra traffic: every milestone lands ~1.5x later.
		fcfg.CurveFailover = jsCurve.Stretch(1.5)
	}
	if *geometry == "mixed" {
		fcfg.GeometryClasses = 2
		fcfg.CurveMismatch = jsCurve.Stretch(*geomStretch)
	}
	if *replicas > 0 {
		if fcfg.Transport == nil {
			ccfg := transport.DefaultClientConfig()
			ccfg.Budget = *fetchBudget
			fcfg.Transport = &cluster.TransportConfig{
				Net:    netsim.Config{BaseLatency: *netLatency},
				Client: ccfg,
			}
		}
		fcfg.Transport.Multi = &cluster.MultiConfig{
			NodesPerRegion:   *storeNodes,
			Replicas:         *replicas,
			PropagateEvery:   *propagateEvery,
			InterNet:         netsim.Config{BaseLatency: *interLatency},
			AggregateSeeders: *aggregate,
		}
	}
	fleet, err := cluster.NewFleet(fcfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "# fleet: %d servers (%d regions x %d buckets), jumpstart=%v, defects=%.2f, scenario=%s, geometry=%s\n",
		fleet.Servers(), fcfg.Regions, fcfg.Buckets, !*noJS, *defects, kind, *geometry)
	fleet.StartDeployment()
	ticks := fleet.Run(dur)
	fmt.Fprintln(stdout, "t_seconds,capacity,down,warming,phase,packages,crashes,fallbacks")
	for i, tk := range ticks {
		if i%4 == 0 || i == len(ticks)-1 {
			fmt.Fprintf(stdout, "%.0f,%.3f,%d,%d,%d,%d,%d,%d\n",
				tk.T, tk.Capacity, tk.Down, tk.Warming, tk.Phase,
				tk.PkgsAvail, tk.Crashes, tk.Fallbacks)
		}
	}
	fmt.Fprintf(stdout, "# capacity loss over push window = %.2f%%; crashes = %d; fallbacks = %d\n",
		cluster.CapacityLoss(ticks, fcfg.TickSeconds)*100, fleet.Crashes(), fleet.Fallbacks())
	if *poolSize > 0 {
		ps := fleet.PoolStats()
		fmt.Fprintf(stdout, "# pool: size=%d avail=%d pending=%d drains=%d backfills=%d misses=%d pooled_boots=%d\n",
			ps.Size, ps.Avail, ps.Pending, ps.Drains, ps.Backfills, ps.Misses, ps.Pooled)
	}
	if wmode == jumpstart.WarmupLazy {
		fmt.Fprintf(stdout, "# lazy boots = %d\n", fleet.LazyBoots())
	}
	if *replicas > 0 {
		propOK, propFail := fleet.Propagation()
		fmt.Fprintf(stdout, "# multistore: replica failovers = %d; consensus packages = %d; aggregated boots = %d; propagation ok/fail = %d/%d\n",
			fleet.Failovers(), fleet.ConsensusPackages(), fleet.AggregatedBoots(), propOK, propFail)
	}
	if kind != scenario.Steady {
		ss := fleet.ScenarioStats()
		fmt.Fprintf(stdout, "# scenario %s: demand-weighted loss = %.2f%%; demand peak/trough = %.2f/%.2f\n",
			kind, cluster.ScenarioCapacityLoss(ticks, fcfg.TickSeconds)*100,
			ss.PeakDemand, ss.TroughDemand)
		if kind == scenario.Failover {
			fmt.Fprintf(stdout, "# failover drill: dark ticks = %d; boots under absorbed load = %d\n",
				ss.DarkTicks, ss.FailoverBoots)
		}
	}
	if *geometry == "mixed" {
		fmt.Fprintf(stdout, "# geometry: census %v; cross-geometry boots = %d (stretch %.2fx)\n",
			fleet.GeometryCensus(), fleet.ScenarioStats().MismatchBoots, *geomStretch)
	}
	if *pushEvery > 0 {
		kept, lost := fleet.PackageChurn()
		fmt.Fprintf(stdout, "# pushes completed = %d (policy %s); remapped boots = %d; packages kept/lost across pushes = %d/%d\n",
			fleet.Revision()-1, policy, fleet.RemapBoots(), kept, lost)
	}
	for _, rc := range fleet.FallbackReasons() {
		fmt.Fprintf(stdout, "# fallback reason: %q x%d\n", rc.Reason, rc.Count)
	}

	if *spansPath != "" {
		check := obs.ValidateSpans(tel.Trace.Events())
		status := "OK"
		if !check.OK() {
			status = fmt.Sprintf("%d VIOLATIONS", len(check.Violations))
		}
		fmt.Fprintf(stdout, "# spans: %d spans, %d instants, %d roots, %d orphans — %s\n",
			check.Spans, check.Instants, check.Roots, check.Orphans, status)
		if err := tel.ExportSpans(*spansPath); err != nil {
			return err
		}
	}
	return tel.ExportFiles(*tracePath, *metricsPath, *cycleProf, "fleetsim")
}
