// Command fleetsim simulates a fleet-wide continuous-deployment push
// (C1 → C2 → C3) with or without Jump-Start, printing the fleet
// capacity time series and the capacity-loss summary, plus an optional
// defective-package reliability injection (Section VI).
//
// Usage:
//
//	fleetsim                        # one push with Jump-Start
//	fleetsim -nojumpstart           # one push without
//	fleetsim -defects 0.5           # inject defective packages
package main

import (
	"flag"
	"fmt"
	"os"

	"jumpstart/internal/cluster"
	"jumpstart/internal/experiments"
)

func main() {
	noJS := flag.Bool("nojumpstart", false, "disable Jump-Start fleet-wide")
	defects := flag.Float64("defects", 0, "probability a seeder produces a crash-inducing package")
	quick := flag.Bool("quick", true, "use the reduced-scale measurement configuration")
	seconds := flag.Float64("seconds", 0, "fleet-sim duration (0 = 6x warmup horizon)")
	flag.Parse()

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	fmt.Println("# measuring single-server warmup curves (detailed simulation)...")
	lab, err := experiments.NewLab(cfg)
	if err != nil {
		fatal(err)
	}
	jsCurve, noCurve, err := lab.FleetCurves()
	if err != nil {
		fatal(err)
	}

	fcfg := cfg.FleetCfg
	fcfg.CurveJumpStart = jsCurve
	fcfg.CurveNoJumpStart = noCurve
	fcfg.JumpStartEnabled = !*noJS
	fcfg.DefectRate = *defects
	fleet, err := cluster.NewFleet(fcfg)
	if err != nil {
		fatal(err)
	}
	dur := *seconds
	if dur == 0 {
		dur = 6 * cfg.Horizon
	}
	fmt.Printf("# fleet: %d servers (%d regions x %d buckets), jumpstart=%v, defects=%.2f\n",
		fleet.Servers(), fcfg.Regions, fcfg.Buckets, !*noJS, *defects)
	fleet.StartDeployment()
	ticks := fleet.Run(dur)
	fmt.Println("t_seconds,capacity,down,warming,phase,packages,crashes,fallbacks")
	for i, tk := range ticks {
		if i%4 == 0 || i == len(ticks)-1 {
			fmt.Printf("%.0f,%.3f,%d,%d,%d,%d,%d,%d\n",
				tk.T, tk.Capacity, tk.Down, tk.Warming, tk.Phase,
				tk.PkgsAvail, tk.Crashes, tk.Fallbacks)
		}
	}
	fmt.Printf("# capacity loss over push window = %.2f%%; crashes = %d; fallbacks = %d\n",
		cluster.CapacityLoss(ticks, fcfg.TickSeconds)*100, fleet.Crashes(), fleet.Fallbacks())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleetsim:", err)
	os.Exit(1)
}
