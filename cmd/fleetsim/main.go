// Command fleetsim simulates a fleet-wide continuous-deployment push
// (C1 → C2 → C3) with or without Jump-Start, printing the fleet
// capacity time series and the capacity-loss summary, plus an optional
// defective-package reliability injection (Section VI).
//
// Usage:
//
//	fleetsim                        # one push with Jump-Start
//	fleetsim -nojumpstart           # one push without
//	fleetsim -defects 0.5           # inject defective packages
//
// Telemetry (all optional, zero simulation perturbation):
//
//	-trace out.jsonl        # fleet + warmup-measurement event trace
//	-metrics out.json       # metrics registry snapshot
//	-cycleprof out.folded   # warmup-measurement cycle profile
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"jumpstart/internal/cluster"
	"jumpstart/internal/experiments"
	"jumpstart/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
}

// labConfig resolves the measurement configuration. It is a variable
// so the smoke test can substitute a micro-scale config; the curve
// measurement at real scale is far too slow for the test suite.
var labConfig = func(quick bool) experiments.Config {
	if quick {
		return experiments.Quick()
	}
	return experiments.Default()
}

// run executes the simulation; main is only flag-error plumbing so
// tests can drive the binary end to end in-process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fleetsim", flag.ContinueOnError)
	noJS := fs.Bool("nojumpstart", false, "disable Jump-Start fleet-wide")
	defects := fs.Float64("defects", 0, "probability a seeder produces a crash-inducing package")
	quick := fs.Bool("quick", true, "use the reduced-scale measurement configuration")
	seconds := fs.Float64("seconds", 0, "fleet-sim duration (0 = 6x warmup horizon)")
	tracePath := fs.String("trace", "", "write the structured event trace as JSONL")
	metricsPath := fs.String("metrics", "", "write the metrics registry snapshot as JSON")
	cycleProf := fs.String("cycleprof", "", "write the virtual-cycle profile as folded stacks")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := labConfig(*quick)
	var tel *telemetry.Set
	if *tracePath != "" || *metricsPath != "" || *cycleProf != "" {
		tel = telemetry.NewSet()
		// The curve-measurement servers and the fleet run strictly
		// sequentially here, so they can share one single-writer set.
		cfg.ServerCfg.Telem = tel
	}
	fmt.Fprintln(stdout, "# measuring single-server warmup curves (detailed simulation)...")
	lab, err := experiments.NewLab(cfg)
	if err != nil {
		return err
	}
	jsCurve, noCurve, err := lab.FleetCurves()
	if err != nil {
		return err
	}

	fcfg := cfg.FleetCfg
	fcfg.CurveJumpStart = jsCurve
	fcfg.CurveNoJumpStart = noCurve
	fcfg.JumpStartEnabled = !*noJS
	fcfg.DefectRate = *defects
	fcfg.Telem = tel
	fleet, err := cluster.NewFleet(fcfg)
	if err != nil {
		return err
	}
	dur := *seconds
	if dur == 0 {
		dur = 6 * cfg.Horizon
	}
	fmt.Fprintf(stdout, "# fleet: %d servers (%d regions x %d buckets), jumpstart=%v, defects=%.2f\n",
		fleet.Servers(), fcfg.Regions, fcfg.Buckets, !*noJS, *defects)
	fleet.StartDeployment()
	ticks := fleet.Run(dur)
	fmt.Fprintln(stdout, "t_seconds,capacity,down,warming,phase,packages,crashes,fallbacks")
	for i, tk := range ticks {
		if i%4 == 0 || i == len(ticks)-1 {
			fmt.Fprintf(stdout, "%.0f,%.3f,%d,%d,%d,%d,%d,%d\n",
				tk.T, tk.Capacity, tk.Down, tk.Warming, tk.Phase,
				tk.PkgsAvail, tk.Crashes, tk.Fallbacks)
		}
	}
	fmt.Fprintf(stdout, "# capacity loss over push window = %.2f%%; crashes = %d; fallbacks = %d\n",
		cluster.CapacityLoss(ticks, fcfg.TickSeconds)*100, fleet.Crashes(), fleet.Fallbacks())

	return tel.ExportFiles(*tracePath, *metricsPath, *cycleProf, "fleetsim")
}
