package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jumpstart/internal/experiments"
)

// microConfig shrinks the quick configuration to smoke-test scale: the
// curve measurement alone takes tens of seconds at experiment scale.
func microConfig(bool) experiments.Config {
	cfg := experiments.Quick()
	cfg.SiteCfg.Units = 6
	cfg.SiteCfg.HelpersPerUnit = 6
	cfg.SiteCfg.EndpointsPerUnit = 3
	cfg.ServerCfg.OfferedRPS = 150
	cfg.ServerCfg.ProfileWindow = 400
	cfg.ServerCfg.SeederCollectWindow = 300
	cfg.ServerCfg.InitCycles = 20e6
	cfg.ServerCfg.MicroSampleEvery = 64
	cfg.Horizon = 40
	cfg.LongHorizon = 80
	cfg.SteadyRequests = 100
	cfg.FleetCfg.Regions = 1
	cfg.FleetCfg.Buckets = 2
	cfg.FleetCfg.ServersPerBucket = 3
	return cfg
}

func TestRunSmokeWithTelemetry(t *testing.T) {
	orig := labConfig
	labConfig = microConfig
	defer func() { labConfig = orig }()

	dir := t.TempDir()
	trace := filepath.Join(dir, "out.jsonl")
	metrics := filepath.Join(dir, "out.json")
	folded := filepath.Join(dir, "out.folded")

	var out strings.Builder
	err := run([]string{
		"-seconds", "60",
		"-trace", trace, "-metrics", metrics, "-cycleprof", folded,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "t_seconds,capacity") {
		t.Fatalf("missing CSV header:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "# capacity loss") {
		t.Fatalf("missing summary:\n%s", out.String())
	}

	mb, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
		Gauges   map[string]float64
	}
	if err := json.Unmarshal(mb, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["fleet.steps_total"] == 0 {
		t.Fatalf("fleet shard collectors recorded nothing: %s", mb)
	}
	if _, ok := snap.Gauges["fleet.capacity"]; !ok {
		t.Fatalf("missing fleet.capacity gauge: %s", mb)
	}

	tb, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tb), `"deployment-start"`) {
		t.Fatal("trace missing deployment-start event")
	}

	fb, err := os.ReadFile(folded)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(fb), "fleetsim;init;") {
		t.Fatalf("unexpected folded output:\n%s", fb)
	}
}

// TestRunMultiRegion smoke-tests the multi-region store flags: sharded
// per-region stores with 2-way replication, seeder aggregation, and
// cross-region propagation over the simulated long-haul links.
func TestRunMultiRegion(t *testing.T) {
	orig := labConfig
	labConfig = microConfig
	defer func() { labConfig = orig }()

	var out strings.Builder
	err := run([]string{"-seconds", "600", "-regions", "2", "-replicas", "2",
		"-store-nodes", "2", "-aggregate", "2", "-propagate-every", "30"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(2 regions x 2 buckets)") {
		t.Fatalf("-regions override not applied:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "# multistore: replica failovers = ") {
		t.Fatalf("missing multistore summary:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "crashes = 0") {
		t.Fatalf("multi-region run crashed servers:\n%s", out.String())
	}
}

// TestRunTransportBrownout smoke-tests the networked-store flags: a
// brownout over the fetch window must surface recorded fallback
// reasons in the summary without crashing anything.
func TestRunTransportBrownout(t *testing.T) {
	orig := labConfig
	labConfig = microConfig
	defer func() { labConfig = orig }()

	var out strings.Builder
	// The C3 fetch storm runs from ~t=305 (C1Hold 60 + C2Hold 240)
	// through the last wave; the brownout blankets it, while seeder
	// publishes (~t=260) land just before it starts.
	err := run([]string{
		"-seconds", "900", "-transport",
		"-brownout-start", "300", "-brownout-seconds", "600",
		"-brownout-drop", "0.99", "-fetch-budget", "8",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "crashes = 0") {
		t.Fatalf("brownout crashed servers:\n%s", out.String())
	}
	if !strings.Contains(out.String(), `# fallback reason: "fetch budget exhausted"`) {
		t.Fatalf("missing fallback-reason summary:\n%s", out.String())
	}
}

// TestRunSpansExport smoke-tests -spans end to end: the deployment's
// causal boot spans export in both formats, the summary line reports a
// clean conservation check, and the Chrome file parses as trace_event
// JSON with complete ("X") boot spans.
func TestRunSpansExport(t *testing.T) {
	orig := labConfig
	labConfig = microConfig
	defer func() { labConfig = orig }()

	dir := t.TempDir()
	chrome := filepath.Join(dir, "spans.json")
	jsonl := filepath.Join(dir, "spans.jsonl")

	var out strings.Builder
	// Nonzero fabric latency gives fetch spans real virtual-time
	// durations; zero-latency RPCs would degrade them to instants.
	if err := run([]string{"-seconds", "900", "-transport", "-net-latency", "0.02", "-spans", chrome}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "orphans — OK") {
		t.Fatalf("missing clean span-check summary:\n%s", out.String())
	}
	cb, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Name string  `json:"name"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(cb, &doc); err != nil {
		t.Fatalf("Chrome trace does not parse: %v", err)
	}
	var boots, fetches int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "boot" {
			boots++
		}
		if ev.Ph == "X" && ev.Name == "transport.fetch" {
			fetches++
		}
	}
	if boots == 0 || fetches == 0 {
		t.Fatalf("Chrome trace missing spans: boots=%d fetches=%d", boots, fetches)
	}

	out.Reset()
	if err := run([]string{"-seconds", "900", "-spans", jsonl}, &out); err != nil {
		t.Fatal(err)
	}
	jb, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(jb), `"name":"boot"`) || !strings.Contains(string(jb), `"parent":`) {
		t.Fatal("JSONL span trace missing boot spans or parent links")
	}
}

// TestRunPoolLazy smoke-tests the warm-pool and lazy-warmup flags
// together: the run must measure a lazy curve, report the pool flow
// accounting with actual standby swap-ins, and count lazy boots. A
// one-slot pool with a near-zero backfill rate guarantees both pool
// paths appear: the first C3 wave drains the standby, later waves miss
// the empty pool and boot on the lazy curve instead.
func TestRunPoolLazy(t *testing.T) {
	orig := labConfig
	labConfig = microConfig
	defer func() { labConfig = orig }()

	var out strings.Builder
	err := run([]string{"-seconds", "900", "-pool-size", "1",
		"-pool-backfill", "0.001", "-warmup-mode", "lazy"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"# lazy boot: armed=",
		"# pool: size=1 ",
		"# lazy boots = ",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "drains=0 ") {
		t.Fatalf("pool never drained:\n%s", s)
	}
	if strings.Contains(s, "# lazy boots = 0\n") {
		t.Fatalf("no lazy boots counted:\n%s", s)
	}
	if err := run([]string{"-warmup-mode", "bogus"}, &out); err == nil {
		t.Fatal("bogus -warmup-mode accepted")
	}
}

// TestRunScenarioFailover smoke-tests -scenario: the drill window must
// show up in the dark-tick accounting and the demand-weighted loss
// summary.
func TestRunScenarioFailover(t *testing.T) {
	orig := labConfig
	labConfig = microConfig
	defer func() { labConfig = orig }()

	var out strings.Builder
	err := run([]string{"-seconds", "900", "-regions", "2", "-scenario", "failover"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"scenario=failover",
		"# scenario failover: demand-weighted loss = ",
		"# failover drill: dark ticks = ",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "dark ticks = 0;") {
		t.Fatalf("drill never darkened a region:\n%s", s)
	}
}

// TestRunGeometryMixed smoke-tests -geometry mixed: two non-empty
// hardware classes and at least one cross-geometry boot replaying the
// stretched curve.
func TestRunGeometryMixed(t *testing.T) {
	orig := labConfig
	labConfig = microConfig
	defer func() { labConfig = orig }()

	var out strings.Builder
	err := run([]string{"-seconds", "600", "-geometry", "mixed"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# geometry: census [") {
		t.Fatalf("missing geometry census:\n%s", s)
	}
	if strings.Contains(s, "cross-geometry boots = 0 ") {
		t.Fatalf("no cross-geometry boots recorded:\n%s", s)
	}
}

// TestRunFlagValidation: nonsense flag values must fail fast with a
// usage pointer, before any measurement starts.
func TestRunFlagValidation(t *testing.T) {
	orig := labConfig
	labConfig = func(bool) experiments.Config {
		t.Fatal("validation must reject flags before the lab is built")
		return experiments.Quick()
	}
	defer func() { labConfig = orig }()

	cases := [][]string{
		{"-pool-size", "-1"},
		{"-pool-backfill", "-0.5"},
		{"-defects", "1.5"},
		{"-seconds", "-10"},
		{"-fetch-budget", "0"},
		{"-brownout-drop", "2"},
		{"-regions", "-2"},
		{"-replicas", "-1"},
		{"-store-nodes", "0"},
		{"-propagate-every", "0"},
		{"-push-every", "-5"},
		{"-churn", "-0.1"},
		{"-geometry-stretch", "0.5"},
		{"-scenario", "hurricane"},
		{"-geometry", "triangular"},
		{"-remap-policy", "vibes"},
		{"-replay-cache", "maybe"},
	}
	for _, args := range cases {
		var out strings.Builder
		err := run(args, &out)
		if err == nil {
			t.Errorf("%v accepted", args)
			continue
		}
		if !strings.Contains(err.Error(), "usage") {
			t.Errorf("%v: error %q has no usage pointer", args, err)
		}
	}
}
