// Command benchjson converts `go test -bench=. -benchmem` output into
// a dated JSON record, so the repository can track a benchmark
// trajectory over time (`make bench` writes BENCH_<date>.json; CI
// uploads it as an artifact).
//
// Every benchmark line is parsed into its name, iteration count, and
// the full metric set — the standard ns/op, B/op and allocs/op plus
// every custom b.ReportMetric unit the figure benchmarks emit
// (speedup_pct, loss_reduction_pct, replay_hit_pct, ...).
//
// Usage:
//
//	go test -bench=. -benchmem . > bench.out
//	benchjson -out BENCH_2026-08-05.json bench.out
//	benchjson -label replay-off < bench.out        # stdin, labeled run
//
// Two dated records can be compared; the exit status gates CI on
// performance regressions:
//
//	benchjson -diff BENCH_old.json BENCH_new.json                # fails >10% ns/op regression
//	benchjson -diff -threshold 5 BENCH_old.json BENCH_new.json   # stricter gate
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the file-level record.
type Report struct {
	Date       string      `json:"date"`
	Label      string      `json:"label,omitempty"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("out", "", "output path (default BENCH_<date>.json)")
	label := fs.String("label", "", "optional run label recorded in the report (e.g. replay-off)")
	diff := fs.Bool("diff", false, "compare two benchmark JSON reports (old.json new.json) and fail on ns/op regressions")
	threshold := fs.Float64("threshold", 10, "max tolerated ns/op regression percent in -diff mode")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *diff {
		if fs.NArg() != 2 {
			return fmt.Errorf("-diff needs exactly two reports: benchjson -diff old.json new.json")
		}
		return runDiff(fs.Arg(0), fs.Arg(1), *threshold, stdout)
	}

	var in io.Reader = os.Stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	benches, err := parse(in)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	date := time.Now().Format("2006-01-02")
	rep := Report{
		Date:       date,
		Label:      *label,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: benches,
	}
	path := *out
	if path == "" {
		path = "BENCH_" + date + ".json"
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%d benchmarks)\n", path, len(benches))
	return nil
}

// runDiff compares two dated reports benchmark-by-benchmark on ns/op
// and fails when any shared benchmark slowed down by more than
// threshold percent. Benchmarks present in only one report are
// reported as removed (only in the old report) or added (only in the
// new one) — visibly, so a renamed benchmark can't silently fall out
// of the comparison — but they never fail the gate: an added or
// removed benchmark is not a regression.
func runDiff(oldPath, newPath string, threshold float64, stdout io.Writer) error {
	load := func(path string) (map[string]Benchmark, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var rep Report
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		m := make(map[string]Benchmark, len(rep.Benchmarks))
		for _, b := range rep.Benchmarks {
			m[b.Name] = b
		}
		return m, nil
	}
	oldBench, err := load(oldPath)
	if err != nil {
		return err
	}
	newBench, err := load(newPath)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(oldBench))
	for name := range oldBench {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions []string
	var removed []string
	compared := 0
	for _, name := range names {
		ob := oldBench[name]
		nb, ok := newBench[name]
		if !ok {
			removed = append(removed, name)
			continue
		}
		oldNS, okOld := ob.Metrics["ns/op"]
		newNS, okNew := nb.Metrics["ns/op"]
		if !okOld || !okNew || oldNS == 0 {
			continue
		}
		compared++
		delta := (newNS/oldNS - 1) * 100
		verdict := "ok"
		if delta > threshold {
			verdict = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%% > %.1f%%)",
					name, oldNS, newNS, delta, threshold))
		}
		fmt.Fprintf(stdout, "%-40s %12.0f %12.0f ns/op  %+7.1f%%  %s\n",
			name, oldNS, newNS, delta, verdict)
	}
	var added []string
	for name := range newBench {
		if _, ok := oldBench[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range removed {
		fmt.Fprintf(stdout, "%-40s removed (only in %s)\n", name, oldPath)
	}
	for _, name := range added {
		fmt.Fprintf(stdout, "%-40s added (only in %s)\n", name, newPath)
	}
	if compared == 0 {
		return fmt.Errorf("no benchmarks with ns/op shared between %s and %s", oldPath, newPath)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.1f%%:\n  %s",
			len(regressions), threshold, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(stdout, "no regressions beyond %.1f%% across %d benchmarks: %d added, %d removed\n",
		threshold, compared, len(added), len(removed))
	return nil
}

// parse extracts benchmark result lines. The format is
//
//	BenchmarkName-8   <N>   <value> <unit>   <value> <unit> ...
//
// where units after the iteration count come in value/unit pairs.
func parse(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			// Strip the -GOMAXPROCS suffix.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
