package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: jumpstart
BenchmarkFig5SteadyState-4       1    5123456789 ns/op    7.20 speedup_pct    91.5 replay_hit_pct    1024 B/op    12 allocs/op
BenchmarkFig4bRPS-4              2    2000000000 ns/op    54.9 loss_reduction_pct
PASS
ok  	jumpstart	12.3s
`
	benches, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(benches))
	}
	// Sorted by name: Fig4bRPS first.
	b4, b5 := benches[0], benches[1]
	if b4.Name != "Fig4bRPS" || b5.Name != "Fig5SteadyState" {
		t.Fatalf("names: %q, %q", b4.Name, b5.Name)
	}
	if b4.Iterations != 2 {
		t.Fatalf("Fig4bRPS iterations = %d, want 2", b4.Iterations)
	}
	if got := b4.Metrics["loss_reduction_pct"]; got != 54.9 {
		t.Fatalf("loss_reduction_pct = %v", got)
	}
	if got := b5.Metrics["ns/op"]; got != 5123456789 {
		t.Fatalf("ns/op = %v", got)
	}
	if got := b5.Metrics["replay_hit_pct"]; got != 91.5 {
		t.Fatalf("replay_hit_pct = %v", got)
	}
	if got := b5.Metrics["allocs/op"]; got != 12 {
		t.Fatalf("allocs/op = %v", got)
	}
}

func TestParseSkipsMalformed(t *testing.T) {
	input := `Benchmark
BenchmarkOdd-4 notanumber 5 ns/op
BenchmarkGood-4 10 100 ns/op
`
	benches, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 1 || benches[0].Name != "Good" {
		t.Fatalf("got %+v, want only Good", benches)
	}
}
