package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: jumpstart
BenchmarkFig5SteadyState-4       1    5123456789 ns/op    7.20 speedup_pct    91.5 replay_hit_pct    1024 B/op    12 allocs/op
BenchmarkFig4bRPS-4              2    2000000000 ns/op    54.9 loss_reduction_pct
PASS
ok  	jumpstart	12.3s
`
	benches, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(benches))
	}
	// Sorted by name: Fig4bRPS first.
	b4, b5 := benches[0], benches[1]
	if b4.Name != "Fig4bRPS" || b5.Name != "Fig5SteadyState" {
		t.Fatalf("names: %q, %q", b4.Name, b5.Name)
	}
	if b4.Iterations != 2 {
		t.Fatalf("Fig4bRPS iterations = %d, want 2", b4.Iterations)
	}
	if got := b4.Metrics["loss_reduction_pct"]; got != 54.9 {
		t.Fatalf("loss_reduction_pct = %v", got)
	}
	if got := b5.Metrics["ns/op"]; got != 5123456789 {
		t.Fatalf("ns/op = %v", got)
	}
	if got := b5.Metrics["replay_hit_pct"]; got != 91.5 {
		t.Fatalf("replay_hit_pct = %v", got)
	}
	if got := b5.Metrics["allocs/op"]; got != 12 {
		t.Fatalf("allocs/op = %v", got)
	}
}

func TestParseSkipsMalformed(t *testing.T) {
	input := `Benchmark
BenchmarkOdd-4 notanumber 5 ns/op
BenchmarkGood-4 10 100 ns/op
`
	benches, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 1 || benches[0].Name != "Good" {
		t.Fatalf("got %+v, want only Good", benches)
	}
}

// writeReport marshals a report fixture for the diff tests.
func writeReport(t *testing.T, dir, name string, benches []Benchmark) string {
	t.Helper()
	data, err := json.Marshal(Report{Date: "2026-08-08", Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffPassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", []Benchmark{
		{Name: "A", Metrics: map[string]float64{"ns/op": 1000}},
		{Name: "B", Metrics: map[string]float64{"ns/op": 2000}},
		{Name: "Gone", Metrics: map[string]float64{"ns/op": 10}},
	})
	newPath := writeReport(t, dir, "new.json", []Benchmark{
		{Name: "A", Metrics: map[string]float64{"ns/op": 1050}}, // +5%
		{Name: "B", Metrics: map[string]float64{"ns/op": 1800}}, // faster
		{Name: "New", Metrics: map[string]float64{"ns/op": 5}},
	})
	var buf bytes.Buffer
	if err := run([]string{"-diff", oldPath, newPath}, &buf); err != nil {
		t.Fatalf("diff within threshold failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"no regressions", "only in " + oldPath, "only in " + newPath} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestDiffReportsAddedAndRemoved pins the one-sided-benchmark
// reporting: a benchmark present only in the old report is "removed",
// one present only in the new report is "added", and the closing
// summary counts both. Before the fix these rows were formatted as a
// bare "only in <path>" indistinguishable from each other and absent
// from the summary.
func TestDiffReportsAddedAndRemoved(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", []Benchmark{
		{Name: "Shared", Metrics: map[string]float64{"ns/op": 1000}},
		{Name: "GoneB", Metrics: map[string]float64{"ns/op": 10}},
		{Name: "GoneA", Metrics: map[string]float64{"ns/op": 10}},
	})
	newPath := writeReport(t, dir, "new.json", []Benchmark{
		{Name: "Shared", Metrics: map[string]float64{"ns/op": 1000}},
		{Name: "Fresh", Metrics: map[string]float64{"ns/op": 5}},
	})
	var buf bytes.Buffer
	if err := run([]string{"-diff", oldPath, newPath}, &buf); err != nil {
		t.Fatalf("diff failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"GoneA",
		"removed (only in " + oldPath + ")",
		"Fresh",
		"added (only in " + newPath + ")",
		"1 added, 2 removed",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Removed rows come out sorted, like every other section.
	if strings.Index(out, "GoneA") > strings.Index(out, "GoneB") {
		t.Fatalf("removed rows not sorted:\n%s", out)
	}
}

func TestDiffFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", []Benchmark{
		{Name: "A", Metrics: map[string]float64{"ns/op": 1000}},
	})
	newPath := writeReport(t, dir, "new.json", []Benchmark{
		{Name: "A", Metrics: map[string]float64{"ns/op": 1200}}, // +20%
	})
	var buf bytes.Buffer
	err := run([]string{"-diff", oldPath, newPath}, &buf)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("err = %v, want regression failure", err)
	}
	// A looser gate tolerates the same slowdown.
	buf.Reset()
	if err := run([]string{"-diff", "-threshold", "25", oldPath, newPath}, &buf); err != nil {
		t.Fatalf("diff with -threshold 25 failed: %v", err)
	}
}

func TestDiffRejectsBadInvocations(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-diff", "only-one.json"}, &buf); err == nil {
		t.Fatal("one-argument -diff accepted")
	}
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", []Benchmark{
		{Name: "A", Metrics: map[string]float64{"speedup_pct": 5}},
	})
	b := writeReport(t, dir, "b.json", []Benchmark{
		{Name: "B", Metrics: map[string]float64{"ns/op": 5}},
	})
	if err := run([]string{"-diff", a, b}, &buf); err == nil {
		t.Fatal("disjoint reports with no shared ns/op accepted")
	}
}
