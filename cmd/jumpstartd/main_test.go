package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jumpstart/internal/telemetry"
)

func TestRunNoJumpStartWithTelemetry(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "out.jsonl")
	metrics := filepath.Join(dir, "out.json")
	folded := filepath.Join(dir, "out.folded")

	var out strings.Builder
	err := run([]string{
		"-mode", "nojumpstart", "-seconds", "30",
		"-trace", trace, "-metrics", metrics, "-cycleprof", folded,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "t_seconds,completed") {
		t.Fatalf("missing CSV header:\n%s", out.String())
	}

	// Trace: non-empty JSONL, starting with the server start event.
	tr, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(tr)), "\n")
	if len(lines) < 2 {
		t.Fatalf("trace too short: %d lines", len(lines))
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("invalid JSONL: %s", line)
		}
	}

	// Metrics: valid JSON with the expected families.
	mb, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(mb, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["server.requests_total"] == 0 {
		t.Fatalf("no requests counted: %s", mb)
	}

	// Cycle profile: folded stacks rooted at the binary name.
	fb, err := os.ReadFile(folded)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(fb), "jumpstartd;init;init ") {
		t.Fatalf("unexpected folded output:\n%s", fb)
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "bogus"}, &out); err == nil {
		t.Fatal("unknown mode must error")
	}
	if err := run([]string{"-mode", "consumer"}, &out); err == nil {
		t.Fatal("consumer without -package must error")
	}
}

func TestTelemetryMux(t *testing.T) {
	tel := telemetry.NewSet()
	tel.Counter("x_total").Add(3)
	mux := telemetryMux(tel)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"x_total":3`) {
		t.Fatalf("metrics endpoint: %d %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Fatalf("pprof endpoint: %d", rec.Code)
	}

	// A nil set still serves valid JSON.
	rec = httptest.NewRecorder()
	telemetryMux(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("nil-set metrics endpoint: %d %s", rec.Code, rec.Body.String())
	}
}
