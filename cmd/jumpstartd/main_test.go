package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jumpstart/internal/jumpstart"
	"jumpstart/internal/jumpstart/transport"
	"jumpstart/internal/obs"
	"jumpstart/internal/telemetry"
)

func TestRunNoJumpStartWithTelemetry(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "out.jsonl")
	metrics := filepath.Join(dir, "out.json")
	folded := filepath.Join(dir, "out.folded")

	var out strings.Builder
	err := run([]string{
		"-mode", "nojumpstart", "-seconds", "30",
		"-trace", trace, "-metrics", metrics, "-cycleprof", folded,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "t_seconds,completed") {
		t.Fatalf("missing CSV header:\n%s", out.String())
	}

	// Trace: non-empty JSONL, starting with the server start event.
	tr, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(tr)), "\n")
	if len(lines) < 2 {
		t.Fatalf("trace too short: %d lines", len(lines))
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("invalid JSONL: %s", line)
		}
	}

	// Metrics: valid JSON with the expected families.
	mb, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(mb, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["server.requests_total"] == 0 {
		t.Fatalf("no requests counted: %s", mb)
	}

	// Cycle profile: folded stacks rooted at the binary name.
	fb, err := os.ReadFile(folded)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(fb), "jumpstartd;init;init ") {
		t.Fatalf("unexpected folded output:\n%s", fb)
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "bogus"}, &out); err == nil {
		t.Fatal("unknown mode must error")
	}
	if err := run([]string{"-mode", "consumer"}, &out); err == nil {
		t.Fatal("consumer without -package or -store-url must error")
	}
}

// TestRunFlagValidation: nonsense numeric flags must fail fast with a
// usage pointer, before any simulation starts.
func TestRunFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-mode", "bogus"},
		{"-seconds", "0"},
		{"-seconds", "-10"},
		{"-region", "-1"},
		{"-bucket", "-1"},
		{"-rps", "-100"},
		{"-fetch-budget", "0"},
		{"-serve-seconds", "-1"},
		{"-replay-cache", "maybe"},
		{"-warmup-mode", "bogus"},
	}
	for _, args := range cases {
		var out strings.Builder
		err := run(args, &out)
		if err == nil {
			t.Errorf("%v accepted", args)
			continue
		}
		if !strings.Contains(err.Error(), "usage") {
			t.Errorf("%v: error %q has no usage pointer", args, err)
		}
	}
}

// TestStoreHandoff drives the full networked seeder→consumer handoff
// against a real store server: the seeder simulates, collects, and
// uploads its package over HTTP; a separate consumer run fetches it
// through the chunked transport and boots with Jump-Start.
func TestStoreHandoff(t *testing.T) {
	store := jumpstart.NewStore()
	ts := httptest.NewServer(transport.NewServer(store, 4096).Handler())
	defer ts.Close()

	var seedOut strings.Builder
	err := run([]string{"-mode", "seeder", "-quick", "-seconds", "600",
		"-store-url", ts.URL}, &seedOut)
	if err != nil {
		t.Fatalf("seeder: %v\n%s", err, seedOut.String())
	}
	if !strings.Contains(seedOut.String(), "# published package id=") {
		t.Fatalf("seeder did not publish:\n%s", seedOut.String())
	}
	if store.Count(0, 0) != 1 {
		t.Fatalf("store holds %d packages", store.Count(0, 0))
	}

	var consOut strings.Builder
	err = run([]string{"-mode", "consumer", "-quick", "-seconds", "30",
		"-store-url", ts.URL}, &consOut)
	if err != nil {
		t.Fatalf("consumer: %v\n%s", err, consOut.String())
	}
	if !strings.Contains(consOut.String(), "# boot: jumpstart=true") {
		t.Fatalf("consumer did not jump-start:\n%s", consOut.String())
	}
	if !strings.Contains(consOut.String(), "t_seconds,completed") {
		t.Fatalf("consumer produced no tick series:\n%s", consOut.String())
	}
}

// TestAggregateMerge drives seeder aggregation end to end: two quick
// seeders with different traffic seeds write their packages, a
// merge-only run combines them into a consensus package on disk, and a
// consumer boots from the merged profiles.
func TestAggregateMerge(t *testing.T) {
	dir := t.TempDir()
	pkgs := []string{filepath.Join(dir, "a.pkg"), filepath.Join(dir, "b.pkg")}
	for i, p := range pkgs {
		var out strings.Builder
		err := run([]string{"-mode", "seeder", "-quick", "-seconds", "600",
			"-seed", []string{"1", "2"}[i], "-package", p}, &out)
		if err != nil {
			t.Fatalf("seeder %d: %v\n%s", i, err, out.String())
		}
	}

	merged := filepath.Join(dir, "merged.pkg")
	var mergeOut strings.Builder
	err := run([]string{"-aggregate", pkgs[0] + "," + pkgs[1], "-package", merged}, &mergeOut)
	if err != nil {
		t.Fatalf("merge: %v\n%s", err, mergeOut.String())
	}
	if !strings.Contains(mergeOut.String(), "# consensus merge: seeders=2") {
		t.Fatalf("missing merge stats:\n%s", mergeOut.String())
	}
	if fi, err := os.Stat(merged); err != nil || fi.Size() == 0 {
		t.Fatalf("merged package not written: %v", err)
	}

	var consOut strings.Builder
	err = run([]string{"-mode", "consumer", "-quick", "-seconds", "30",
		"-aggregate", pkgs[0] + "," + pkgs[1]}, &consOut)
	if err != nil {
		t.Fatalf("consumer: %v\n%s", err, consOut.String())
	}
	if !strings.Contains(consOut.String(), "# consensus merge: seeders=2") ||
		!strings.Contains(consOut.String(), "t_seconds,completed") {
		t.Fatalf("aggregated consumer boot incomplete:\n%s", consOut.String())
	}
}

// TestConsumerStoreURLFallback: with an unreachable store and a tiny
// fetch budget the consumer must still come up — without Jump-Start,
// with the budget exhaustion recorded as the reason.
func TestConsumerStoreURLFallback(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-mode", "consumer", "-quick", "-seconds", "10",
		"-store-url", "http://127.0.0.1:1", "-fetch-budget", "0.2"}, &out)
	if err != nil {
		t.Fatalf("fallback boot errored: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "# boot: jumpstart=false") ||
		!strings.Contains(out.String(), "fetch budget exhausted") {
		t.Fatalf("missing fallback report:\n%s", out.String())
	}
}

// TestServeStoreSmoke binds the store daemon to an ephemeral port,
// preloads a package file, and shuts down on the -serve-seconds timer.
func TestServeStoreSmoke(t *testing.T) {
	pkgFile := filepath.Join(t.TempDir(), "p.pkg")
	if err := os.WriteFile(pkgFile, []byte("opaque-package-bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{"-serve-store", "127.0.0.1:0", "-serve-seconds", "0.05",
		"-package", pkgFile}, &out)
	if err != nil {
		t.Fatalf("serve-store: %v\n%s", err, out.String())
	}
	for _, want := range []string{"# store listening on http://127.0.0.1:",
		"# preloaded", "# store shut down"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q:\n%s", want, out.String())
		}
	}
}

func TestTelemetryMux(t *testing.T) {
	tel := telemetry.NewSet()
	tel.Counter("x_total").Add(3)
	mux := telemetryMux(tel)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"x_total":3`) {
		t.Fatalf("metrics endpoint: %d %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Fatalf("pprof endpoint: %d", rec.Code)
	}

	// A nil set still serves valid JSON.
	rec = httptest.NewRecorder()
	telemetryMux(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("nil-set metrics endpoint: %d %s", rec.Code, rec.Body.String())
	}
}

// TestRunSpansExport smoke-tests -spans on a networked consumer boot:
// the boot span tree — store pick, transport fetch with its RPC
// children, validation — exports as JSONL with parent links intact and
// passes the duration-conservation check.
func TestRunSpansExport(t *testing.T) {
	store := jumpstart.NewStore()
	ts := httptest.NewServer(transport.NewServer(store, 4096).Handler())
	defer ts.Close()

	var seedOut strings.Builder
	if err := run([]string{"-mode", "seeder", "-quick", "-seconds", "600",
		"-store-url", ts.URL}, &seedOut); err != nil {
		t.Fatalf("seeder: %v", err)
	}

	dir := t.TempDir()
	jsonl := filepath.Join(dir, "boot.jsonl")
	var out strings.Builder
	if err := run([]string{"-mode", "consumer", "-quick", "-seconds", "30",
		"-store-url", ts.URL, "-spans", jsonl}, &out); err != nil {
		t.Fatalf("consumer: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "# boot: jumpstart=true") {
		t.Fatalf("consumer did not jump-start:\n%s", out.String())
	}

	data, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name":"boot"`, `"name":"store.pick"`,
		`"name":"transport.fetch"`, `"name":"validate"`, `"parent":`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("span trace missing %s:\n%s", want, data)
		}
	}

	var evs []telemetry.Event
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var raw struct {
			Seq    uint64  `json:"seq"`
			Parent uint64  `json:"parent"`
			T      float64 `json:"t"`
			Dur    float64 `json:"dur"`
			Cat    string  `json:"cat"`
			Name   string  `json:"name"`
		}
		if err := json.Unmarshal([]byte(line), &raw); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		evs = append(evs, telemetry.Event{Seq: raw.Seq, Parent: raw.Parent,
			T: raw.T, Dur: raw.Dur, Cat: raw.Cat, Name: raw.Name})
	}
	check := obs.ValidateSpans(evs)
	if check.Spans == 0 {
		t.Fatal("no spans in exported trace")
	}
	if !check.OK() {
		t.Fatalf("span conservation violated: %v", check.Violations)
	}
}

// TestLazyStoreHandoff runs the networked handoff with lazy warmup:
// the consumer boots from the store immediately and pages translation
// chunks back in over the same transport client on first call, so the
// lazy summary must show transport page-ins with zero misses against
// the healthy store.
func TestLazyStoreHandoff(t *testing.T) {
	store := jumpstart.NewStore()
	ts := httptest.NewServer(transport.NewServer(store, 4096).Handler())
	defer ts.Close()

	var seedOut strings.Builder
	err := run([]string{"-mode", "seeder", "-quick", "-seconds", "600",
		"-store-url", ts.URL}, &seedOut)
	if err != nil {
		t.Fatalf("seeder: %v\n%s", err, seedOut.String())
	}

	var consOut strings.Builder
	err = run([]string{"-mode", "consumer", "-quick", "-seconds", "30",
		"-store-url", ts.URL, "-warmup-mode", "lazy"}, &consOut)
	if err != nil {
		t.Fatalf("lazy consumer: %v\n%s", err, consOut.String())
	}
	out := consOut.String()
	if !strings.Contains(out, "# boot: jumpstart=true") {
		t.Fatalf("lazy consumer did not jump-start:\n%s", out)
	}
	if !strings.Contains(out, "# lazy: armed=") || strings.Contains(out, "armed=0 ") {
		t.Fatalf("lazy summary missing or armed nothing:\n%s", out)
	}
	if !strings.Contains(out, "(transport page-ins=") ||
		strings.Contains(out, "page-ins=0 ") {
		t.Fatalf("page-ins did not travel the transport:\n%s", out)
	}
	if !strings.Contains(out, "misses=0)") {
		t.Fatalf("healthy store missed page-ins:\n%s", out)
	}

	// The mode only makes sense for consumers.
	if err := run([]string{"-mode", "seeder", "-warmup-mode", "lazy"}, &consOut); err == nil {
		t.Fatal("-warmup-mode lazy with -mode seeder accepted")
	}
	if err := run([]string{"-mode", "consumer", "-warmup-mode", "bogus"}, &consOut); err == nil {
		t.Fatal("bogus -warmup-mode accepted")
	}
}
