// Command jumpstartd runs one simulated HHVM web server against the
// synthetic website, in any of the three Figure 3 modes, printing the
// per-tick time series (time, RPS, latency, code size, phase).
//
// Usage:
//
//	jumpstartd -mode nojumpstart -seconds 600
//	jumpstartd -mode seeder -package /tmp/profile.pkg         # write a package
//	jumpstartd -mode consumer -package /tmp/profile.pkg       # read a package
package main

import (
	"flag"
	"fmt"
	"os"

	"jumpstart/internal/prof"
	"jumpstart/internal/server"
	"jumpstart/internal/workload"
)

func main() {
	mode := flag.String("mode", "nojumpstart", "nojumpstart | seeder | consumer")
	seconds := flag.Float64("seconds", 600, "virtual seconds to simulate")
	pkgPath := flag.String("package", "", "profile package path (written by seeder, read by consumer)")
	region := flag.Int("region", 0, "data-center region")
	bucket := flag.Int("bucket", 0, "semantic bucket")
	seed := flag.Uint64("seed", 1, "traffic seed")
	rps := flag.Float64("rps", 0, "offered RPS (0 = default)")
	flag.Parse()

	site, err := workload.GenerateSite(workload.DefaultSiteConfig())
	if err != nil {
		fatal(err)
	}

	cfg := server.DefaultConfig()
	cfg.Region, cfg.Bucket, cfg.Seed = *region, *bucket, *seed
	if *rps > 0 {
		cfg.OfferedRPS = *rps
	}
	switch *mode {
	case "nojumpstart":
		cfg.Mode = server.ModeNoJumpStart
	case "seeder":
		cfg.Mode = server.ModeSeeder
		cfg.JITOpts.InstrumentOptimized = true
	case "consumer":
		cfg.Mode = server.ModeConsumer
		if *pkgPath == "" {
			fatal(fmt.Errorf("consumer mode requires -package"))
		}
		data, err := os.ReadFile(*pkgPath)
		if err != nil {
			fatal(err)
		}
		pkg, err := prof.Decode(data)
		if err != nil {
			fatal(err)
		}
		cfg.Package = pkg
		cfg.UsePropertyOrder = true
		cfg.JITOpts.UseVasmCounters = true
		cfg.JITOpts.UseSeededCallGraph = true
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	s, err := server.New(site, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# %s server, region %d bucket %d, offered %.0f RPS\n",
		*mode, *region, *bucket, cfg.OfferedRPS)
	fmt.Println("t_seconds,completed,avg_latency_ms,code_bytes,phase,faults")
	for _, tk := range s.Run(*seconds) {
		fmt.Printf("%.0f,%d,%.1f,%d,%s,%d\n",
			tk.T, tk.Completed, tk.AvgLatencyMS, tk.CodeBytes, tk.Phase, tk.Faults)
		if s.Phase() == server.PhaseExited {
			break
		}
	}

	if *mode == "seeder" {
		pkg, ok := s.SeederPackage()
		if !ok {
			fatal(fmt.Errorf("seeder did not finish within %v virtual seconds", *seconds))
		}
		c := pkg.Coverage()
		fmt.Printf("# package: %d funcs, %d hot blocks, %d requests profiled\n",
			c.Funcs, c.Blocks, c.RequestCount)
		if *pkgPath != "" {
			if err := os.WriteFile(*pkgPath, pkg.Encode(), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("# wrote %s (%d bytes)\n", *pkgPath, len(pkg.Encode()))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jumpstartd:", err)
	os.Exit(1)
}
