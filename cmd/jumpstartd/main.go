// Command jumpstartd runs one simulated HHVM web server against the
// synthetic website, in any of the three Figure 3 modes, printing the
// per-tick time series (time, RPS, latency, code size, phase).
//
// Usage:
//
//	jumpstartd -mode nojumpstart -seconds 600
//	jumpstartd -mode seeder -package /tmp/profile.pkg         # write a package
//	jumpstartd -mode consumer -package /tmp/profile.pkg       # read a package
//
// Telemetry (all optional, zero simulation perturbation):
//
//	-trace out.jsonl        # structured event trace
//	-metrics out.json       # metrics registry snapshot
//	-cycleprof out.folded   # virtual-cycle flame profile (folded stacks)
//	-http :8080             # live /metrics endpoint + net/http/pprof
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"

	"jumpstart/internal/prof"
	"jumpstart/internal/server"
	"jumpstart/internal/telemetry"
	"jumpstart/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jumpstartd:", err)
		os.Exit(1)
	}
}

// run executes the simulation; main is only flag-error plumbing so
// tests can drive the binary end to end in-process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("jumpstartd", flag.ContinueOnError)
	mode := fs.String("mode", "nojumpstart", "nojumpstart | seeder | consumer")
	seconds := fs.Float64("seconds", 600, "virtual seconds to simulate")
	pkgPath := fs.String("package", "", "profile package path (written by seeder, read by consumer)")
	region := fs.Int("region", 0, "data-center region")
	bucket := fs.Int("bucket", 0, "semantic bucket")
	seed := fs.Uint64("seed", 1, "traffic seed")
	rps := fs.Float64("rps", 0, "offered RPS (0 = default)")
	tracePath := fs.String("trace", "", "write the structured event trace as JSONL")
	metricsPath := fs.String("metrics", "", "write the metrics registry snapshot as JSON")
	cycleProf := fs.String("cycleprof", "", "write the virtual-cycle profile as folded stacks")
	httpAddr := fs.String("http", "", "serve /metrics and /debug/pprof on this address while simulating")
	if err := fs.Parse(args); err != nil {
		return err
	}

	site, err := workload.GenerateSite(workload.DefaultSiteConfig())
	if err != nil {
		return err
	}

	cfg := server.DefaultConfig()
	cfg.Region, cfg.Bucket, cfg.Seed = *region, *bucket, *seed
	if *rps > 0 {
		cfg.OfferedRPS = *rps
	}
	// Telemetry is allocated whenever any sink wants it; the simulation
	// output is byte-identical either way.
	var tel *telemetry.Set
	if *tracePath != "" || *metricsPath != "" || *cycleProf != "" || *httpAddr != "" {
		tel = telemetry.NewSet()
	}
	cfg.Telem = tel

	switch *mode {
	case "nojumpstart":
		cfg.Mode = server.ModeNoJumpStart
	case "seeder":
		cfg.Mode = server.ModeSeeder
		cfg.JITOpts.InstrumentOptimized = true
	case "consumer":
		cfg.Mode = server.ModeConsumer
		if *pkgPath == "" {
			return fmt.Errorf("consumer mode requires -package")
		}
		data, err := os.ReadFile(*pkgPath)
		if err != nil {
			return err
		}
		pkg, err := prof.Decode(data)
		if err != nil {
			return err
		}
		cfg.Package = pkg
		cfg.UsePropertyOrder = true
		cfg.JITOpts.UseVasmCounters = true
		cfg.JITOpts.UseSeededCallGraph = true
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	if *httpAddr != "" {
		go func() {
			// Telemetry instruments are atomic, so serving reads
			// concurrently with the simulation is safe.
			if err := http.ListenAndServe(*httpAddr, telemetryMux(tel)); err != nil {
				fmt.Fprintln(os.Stderr, "jumpstartd: http:", err)
			}
		}()
	}

	s, err := server.New(site, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "# %s server, region %d bucket %d, offered %.0f RPS\n",
		*mode, *region, *bucket, cfg.OfferedRPS)
	fmt.Fprintln(stdout, "t_seconds,completed,avg_latency_ms,code_bytes,phase,faults")
	for _, tk := range s.Run(*seconds) {
		fmt.Fprintf(stdout, "%.0f,%d,%.1f,%d,%s,%d\n",
			tk.T, tk.Completed, tk.AvgLatencyMS, tk.CodeBytes, tk.Phase, tk.Faults)
		if s.Phase() == server.PhaseExited {
			break
		}
	}

	if *mode == "seeder" {
		pkg, ok := s.SeederPackage()
		if !ok {
			return fmt.Errorf("seeder did not finish within %v virtual seconds", *seconds)
		}
		c := pkg.Coverage()
		fmt.Fprintf(stdout, "# package: %d funcs, %d hot blocks, %d requests profiled\n",
			c.Funcs, c.Blocks, c.RequestCount)
		if *pkgPath != "" {
			if err := os.WriteFile(*pkgPath, pkg.Encode(), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "# wrote %s (%d bytes)\n", *pkgPath, len(pkg.Encode()))
		}
	}

	return tel.ExportFiles(*tracePath, *metricsPath, *cycleProf, "jumpstartd")
}

// telemetryMux serves the live metrics snapshot and the standard Go
// profiling endpoints. Exposed as a function so tests can exercise the
// endpoints via httptest without binding a port.
func telemetryMux(tel *telemetry.Set) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if tel == nil {
			fmt.Fprintln(w, "{}")
			return
		}
		if err := tel.Metrics.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
