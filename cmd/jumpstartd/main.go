// Command jumpstartd runs one simulated HHVM web server against the
// synthetic website, in any of the three Figure 3 modes, printing the
// per-tick time series (time, RPS, latency, code size, phase).
//
// Usage:
//
//	jumpstartd -mode nojumpstart -seconds 600
//	jumpstartd -mode seeder -package /tmp/profile.pkg         # write a package
//	jumpstartd -mode consumer -package /tmp/profile.pkg       # read a package
//	jumpstartd -mode consumer -package /tmp/profile.pkg \
//	           -warmup-mode lazy                              # serve immediately, page
//	                                                          # translations in on first call
//
// Networked profile store (two-process handoff over localhost):
//
//	jumpstartd -serve-store 127.0.0.1:8099                    # store daemon
//	jumpstartd -mode seeder   -store-url http://127.0.0.1:8099  # upload
//	jumpstartd -mode consumer -store-url http://127.0.0.1:8099  # fetch + boot
//
// Seeder aggregation (merge N seeder packages into one consensus package):
//
//	jumpstartd -aggregate a.pkg,b.pkg,c.pkg -package merged.pkg   # merge only
//	jumpstartd -mode consumer -aggregate a.pkg,b.pkg              # merge, then boot
//
// Telemetry (all optional, zero simulation perturbation):
//
//	-trace out.jsonl        # structured event trace
//	-metrics out.json       # metrics registry snapshot
//	-cycleprof out.folded   # virtual-cycle flame profile (folded stacks)
//	-spans boot.json        # causal boot-span trace; .json = Chrome
//	                        # trace_event (load in ui.perfetto.dev),
//	                        # any other extension = JSONL
//	-http :8080             # live /metrics endpoint + net/http/pprof
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"jumpstart/internal/jumpstart"
	"jumpstart/internal/jumpstart/transport"
	"jumpstart/internal/obs"
	"jumpstart/internal/prof"
	"jumpstart/internal/server"
	"jumpstart/internal/telemetry"
	"jumpstart/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jumpstartd:", err)
		os.Exit(1)
	}
}

// run executes the simulation; main is only flag-error plumbing so
// tests can drive the binary end to end in-process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("jumpstartd", flag.ContinueOnError)
	mode := fs.String("mode", "nojumpstart", "nojumpstart | seeder | consumer")
	seconds := fs.Float64("seconds", 600, "virtual seconds to simulate")
	pkgPath := fs.String("package", "", "profile package path (written by seeder, read by consumer)")
	aggregatePkgs := fs.String("aggregate", "", "comma-separated seeder package files to merge into one consensus package (written to -package; -mode consumer boots from the merge)")
	region := fs.Int("region", 0, "data-center region")
	bucket := fs.Int("bucket", 0, "semantic bucket")
	seed := fs.Uint64("seed", 1, "traffic seed")
	rps := fs.Float64("rps", 0, "offered RPS (0 = default)")
	tracePath := fs.String("trace", "", "write the structured event trace as JSONL")
	metricsPath := fs.String("metrics", "", "write the metrics registry snapshot as JSON")
	cycleProf := fs.String("cycleprof", "", "write the virtual-cycle profile as folded stacks")
	spansPath := fs.String("spans", "", "write the causal boot-span trace (.json = Chrome trace_event for Perfetto, else JSONL)")
	httpAddr := fs.String("http", "", "serve /metrics and /debug/pprof on this address while simulating")
	serveStore := fs.String("serve-store", "", "run as a networked profile-store server on this address instead of simulating")
	serveSeconds := fs.Float64("serve-seconds", 0, "wall seconds to serve the store before exiting (0 = forever)")
	storeURL := fs.String("store-url", "", "networked profile store base URL (seeder uploads to it, consumer fetches from it)")
	fetchBudget := fs.Float64("fetch-budget", 30, "consumer per-boot fetch deadline budget, wall seconds")
	revision := fs.Uint64("revision", 0, "build revision checksum: seeders stamp uploaded packages with it, consumers reject mismatched packages (0 disables checking)")
	quick := fs.Bool("quick", false, "reduced-scale site and server config (fast demos and tests)")
	replayCache := fs.String("replay-cache", "on", "translation replay memoization: on | off (host-side speedup; simulation output is byte-identical either way)")
	warmupMode := fs.String("warmup-mode", "eager", "consumer package materialization: eager | lazy (lazy serves immediately and pages translations in on first call; with -store-url page-ins re-fetch chunks over the transport)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *replayCache != "on" && *replayCache != "off" {
		return fmt.Errorf("-replay-cache must be on or off, got %q (see jumpstartd -h for usage)", *replayCache)
	}
	wmode, err := jumpstart.ParseWarmupMode(*warmupMode)
	if err != nil {
		return fmt.Errorf("%v (see jumpstartd -h for usage)", err)
	}
	switch *mode {
	case "nojumpstart", "seeder", "consumer":
	default:
		return fmt.Errorf("-mode must be nojumpstart, seeder or consumer, got %q (see jumpstartd -h for usage)", *mode)
	}
	for _, c := range []struct {
		bad  bool
		name string
		msg  string
	}{
		{*seconds <= 0, "-seconds", "must be > 0"},
		{*region < 0, "-region", "must be >= 0"},
		{*bucket < 0, "-bucket", "must be >= 0"},
		{*rps < 0, "-rps", "must be >= 0"},
		{*fetchBudget <= 0, "-fetch-budget", "must be > 0"},
		{*serveSeconds < 0, "-serve-seconds", "must be >= 0"},
	} {
		if c.bad {
			return fmt.Errorf("%s %s (see jumpstartd -h for usage)", c.name, c.msg)
		}
	}
	if wmode == jumpstart.WarmupLazy && *mode != "consumer" {
		return fmt.Errorf("-warmup-mode lazy requires -mode consumer (see jumpstartd -h for usage)")
	}
	if *aggregatePkgs != "" && *mode != "consumer" {
		// Merge-only invocation: combine seeder packages into a
		// consensus package without running a server.
		_, err := mergePackages(*aggregatePkgs, *pkgPath, stdout)
		return err
	}

	// Telemetry is allocated whenever any sink wants it; the simulation
	// output is byte-identical either way.
	var tel *telemetry.Set
	if *tracePath != "" || *metricsPath != "" || *cycleProf != "" || *httpAddr != "" || *spansPath != "" {
		tel = telemetry.NewSet()
		if *spansPath != "" {
			// Keep whole span trees resident: a long run's phase spans
			// and a networked boot's retry children must not evict each
			// other's parents.
			tel.Trace = telemetry.NewTrace(1 << 17)
		}
	}

	if *serveStore != "" {
		if err := runStoreServer(*serveStore, *serveSeconds, *pkgPath, *region, *bucket, tel, stdout); err != nil {
			return err
		}
		if err := exportSpans(tel, *spansPath, stdout); err != nil {
			return err
		}
		return tel.ExportFiles(*tracePath, *metricsPath, *cycleProf, "jumpstartd")
	}

	scfg := workload.DefaultSiteConfig()
	cfg := server.DefaultConfig()
	if *quick {
		scfg.Units, scfg.HelpersPerUnit, scfg.EndpointsPerUnit = 5, 6, 3
		cfg.OfferedRPS = 150
		cfg.TickSeconds = 2
		cfg.ProfileWindow = 300
		cfg.SeederCollectWindow = 250
		cfg.InitCycles = 10e6
		cfg.UnitPreloadCycles = 100e3
		cfg.WarmupRequests = 4
		cfg.MicroSampleEvery = 16
	}
	site, err := workload.GenerateSite(scfg)
	if err != nil {
		return err
	}

	cfg.Region, cfg.Bucket, cfg.Seed = *region, *bucket, *seed
	if *rps > 0 {
		cfg.OfferedRPS = *rps
	}
	cfg.Telem = tel
	cfg.ReplayCache = *replayCache == "on"

	var s *server.Server
	var pager *transport.LazyPager
	switch *mode {
	case "nojumpstart":
		cfg.Mode = server.ModeNoJumpStart
	case "seeder":
		cfg.Mode = server.ModeSeeder
		cfg.JITOpts.InstrumentOptimized = true
	case "consumer":
		cfg.UsePropertyOrder = true
		cfg.JITOpts.UseVasmCounters = true
		cfg.JITOpts.UseSeededCallGraph = true
		cfg.LazyWarmup = wmode == jumpstart.WarmupLazy
		if *storeURL != "" {
			// Networked boot: fetch a package through the retrying
			// transport client; BootConsumer handles the pick/decode
			// retries and the automatic no-Jump-Start fallback.
			srv, info, pg, err := bootFromStore(site, cfg, *storeURL, *fetchBudget, *seed, *revision, wmode, tel)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "# boot: jumpstart=%v attempts=%d package=%d reason=%q\n",
				info.UsedJumpStart, info.Attempts, info.PackageID, info.FallbackReason)
			s, pager = srv, pg
		} else if *aggregatePkgs != "" {
			cfg.Mode = server.ModeConsumer
			pkg, err := mergePackages(*aggregatePkgs, *pkgPath, stdout)
			if err != nil {
				return err
			}
			cfg.Package = pkg
		} else {
			cfg.Mode = server.ModeConsumer
			if *pkgPath == "" {
				return fmt.Errorf("consumer mode requires -package, -aggregate, or -store-url")
			}
			data, err := os.ReadFile(*pkgPath)
			if err != nil {
				return err
			}
			pkg, err := prof.Decode(data)
			if err != nil {
				return err
			}
			cfg.Package = pkg
		}
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	if *httpAddr != "" {
		go func() {
			// Telemetry instruments are atomic, so serving reads
			// concurrently with the simulation is safe.
			if err := http.ListenAndServe(*httpAddr, telemetryMux(tel)); err != nil {
				fmt.Fprintln(os.Stderr, "jumpstartd: http:", err)
			}
		}()
	}

	if s == nil {
		s, err = server.New(site, cfg)
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "# %s server, region %d bucket %d, offered %.0f RPS\n",
		*mode, *region, *bucket, cfg.OfferedRPS)
	fmt.Fprintln(stdout, "t_seconds,completed,avg_latency_ms,code_bytes,phase,faults")
	for _, tk := range s.Run(*seconds) {
		fmt.Fprintf(stdout, "%.0f,%d,%.1f,%d,%s,%d\n",
			tk.T, tk.Completed, tk.AvgLatencyMS, tk.CodeBytes, tk.Phase, tk.Faults)
		if s.Phase() == server.PhaseExited {
			break
		}
	}
	if wmode == jumpstart.WarmupLazy {
		ls := s.LazyStats()
		fmt.Fprintf(stdout, "# lazy: armed=%d paged=%d misses=%d", ls.Armed, ls.Paged, ls.Misses)
		if pager != nil {
			ins, misses := pager.Stats()
			fmt.Fprintf(stdout, " (transport page-ins=%d misses=%d)", ins, misses)
		}
		fmt.Fprintln(stdout)
	}

	if *mode == "seeder" {
		pkg, ok := s.SeederPackage()
		if !ok {
			return fmt.Errorf("seeder did not finish within %v virtual seconds", *seconds)
		}
		c := pkg.Coverage()
		fmt.Fprintf(stdout, "# package: %d funcs, %d hot blocks, %d requests profiled\n",
			c.Funcs, c.Blocks, c.RequestCount)
		if *pkgPath != "" {
			if err := os.WriteFile(*pkgPath, pkg.Encode(), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "# wrote %s (%d bytes)\n", *pkgPath, len(pkg.Encode()))
		}
		if *storeURL != "" {
			if *revision != 0 {
				pkg.Meta.Revision = int64(*revision)
			}
			cli := storeClient(*storeURL, *fetchBudget, *seed, tel)
			id, err := cli.Publish(*region, *bucket, *revision, pkg.Encode())
			if err != nil {
				return fmt.Errorf("publish to %s: %w", *storeURL, err)
			}
			fmt.Fprintf(stdout, "# published package id=%d (%d bytes) to %s\n",
				id, len(pkg.Encode()), *storeURL)
		}
	}

	if err := exportSpans(tel, *spansPath, stdout); err != nil {
		return err
	}
	return tel.ExportFiles(*tracePath, *metricsPath, *cycleProf, "jumpstartd")
}

// exportSpans validates the recorded span trees (duration conservation,
// no orphans) and writes them to path — Chrome trace_event when it ends
// in .json, JSONL otherwise. No-op when path is empty.
func exportSpans(tel *telemetry.Set, path string, stdout io.Writer) error {
	if path == "" {
		return nil
	}
	check := obs.ValidateSpans(tel.Trace.Events())
	status := "OK"
	if !check.OK() {
		status = fmt.Sprintf("%d VIOLATIONS", len(check.Violations))
	}
	fmt.Fprintf(stdout, "# spans: %d spans, %d instants, %d roots, %d orphans — %s\n",
		check.Spans, check.Instants, check.Roots, check.Orphans, status)
	return tel.ExportSpans(path)
}

// mergePackages decodes the comma-separated seeder package files, merges
// them into one consensus package via prof.Aggregate, optionally writes
// the result to outPath, and reports the merge stats.
func mergePackages(list, outPath string, stdout io.Writer) (*prof.Profile, error) {
	var pkgs []*prof.Profile
	for _, p := range strings.Split(list, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		pkg, err := prof.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	merged, stats, err := prof.Aggregate(pkgs)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(stdout, "# consensus merge: seeders=%d funcs=%d checksum_conflicts=%d type_sites_kept=%d type_sites_dropped=%d vasm_dropped=%d\n",
		stats.Seeders, stats.Funcs, stats.ChecksumConflicts,
		stats.TypeSitesKept, stats.TypeSitesDropped, stats.VasmDropped)
	if outPath != "" {
		enc := merged.Encode()
		if err := os.WriteFile(outPath, enc, 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(stdout, "# wrote %s (%d bytes)\n", outPath, len(enc))
	}
	return merged, nil
}

// storeClient builds a retrying transport client against a real store
// over HTTP, with the wall clock driving timeouts and the per-boot
// deadline budget.
func storeClient(url string, budget float64, seed uint64, tel *telemetry.Set) *transport.Client {
	ccfg := transport.DefaultClientConfig()
	ccfg.Budget = budget
	ccfg.Seed = seed
	cli := transport.NewClient(transport.NewHTTPConn(url, ccfg.RPCTimeout),
		transport.NewWallClock(), ccfg)
	cli.SetTelemetry(tel)
	return cli
}

// bootFromStore boots a consumer from the networked store: the
// transport client is the package source, so fetch retries, chunk
// resume, and the deadline budget all apply; budget exhaustion surfaces
// as BootInfo.FallbackReason and the server comes up without Jump-Start.
// In lazy warmup mode the same client doubles as the pager: the pager
// is built before the boot (so the server config can carry it) and
// armed with the boot fetch's manifest afterwards, before any request
// is served.
func bootFromStore(site *workload.Site, cfg server.Config, url string,
	budget float64, seed, revision uint64, wmode jumpstart.WarmupMode,
	tel *telemetry.Set) (*server.Server, jumpstart.BootInfo, *transport.LazyPager, error) {
	// One wall clock for both the transport client and the boot
	// protocol: the boot span and its nested fetch spans must share a
	// timebase or the children would escape the parent's window.
	wall := transport.NewWallClock()
	ccfg := transport.DefaultClientConfig()
	ccfg.Budget = budget
	ccfg.Seed = seed
	cli := transport.NewClient(transport.NewHTTPConn(url, ccfg.RPCTimeout), wall, ccfg)
	cli.SetTelemetry(tel)
	var pager *transport.LazyPager
	if wmode == jumpstart.WarmupLazy {
		pager = transport.NewLazyPager(cli, nil, cfg.ClockHz)
		cfg.Pager = pager
	}
	rnd := seed
	srv, info, err := jumpstart.BootConsumer(site, cli, jumpstart.BootConfig{
		Server:   cfg,
		Telem:    tel,
		Clock:    wall.Now,
		Revision: revision,
		Warmup:   wmode,
		Rand: func() uint64 {
			rnd = rnd*6364136223846793005 + 1442695040888963407
			return rnd
		},
	})
	if err == nil && pager != nil {
		pager.SetManifest(cli.LastManifest())
	}
	return srv, info, pager, err
}

// runStoreServer runs the networked profile store: a jumpstart.Store
// fronted by the chunked HTTP protocol. An optional -package file is
// preloaded into (-region, -bucket) so a consumer can fetch it without
// a live seeder.
func runStoreServer(addr string, seconds float64, preload string,
	region, bucket int, tel *telemetry.Set, stdout io.Writer) error {
	store := jumpstart.NewStore()
	srv := transport.NewServer(store, 0)
	if tel != nil {
		wall := transport.NewWallClock()
		store.SetTelemetry(tel, wall.Now)
		srv.SetTelemetry(tel, wall.Now)
	}
	if preload != "" {
		data, err := os.ReadFile(preload)
		if err != nil {
			return err
		}
		id := store.Publish(region, bucket, data)
		fmt.Fprintf(stdout, "# preloaded %s as package id=%d (region %d bucket %d)\n",
			preload, id, region, bucket)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "# store listening on http://%s\n", ln.Addr())
	hs := &http.Server{Handler: srv.Handler()}
	if seconds <= 0 {
		return hs.Serve(ln)
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-time.After(time.Duration(seconds * float64(time.Second))):
	}
	if err := hs.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "# store shut down after %.2fs\n", seconds)
	return nil
}

// telemetryMux serves the live metrics snapshot and the standard Go
// profiling endpoints. Exposed as a function so tests can exercise the
// endpoints via httptest without binding a port.
func telemetryMux(tel *telemetry.Set) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if tel == nil {
			fmt.Fprintln(w, "{}")
			return
		}
		if err := tel.Metrics.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
