// Package-level benchmarks: one per figure/table of the paper's
// evaluation. Each benchmark runs the corresponding experiment driver
// and reports the reproduced headline values as custom metrics, so
// `go test -bench=. -benchmem` regenerates the paper's results.
//
// Benchmarks run at the reduced Quick scale by default so the whole
// suite completes in minutes; run cmd/experiments for the full-scale
// figures.
package main

import (
	"flag"
	"sync"
	"testing"

	"jumpstart/internal/experiments"
	"jumpstart/internal/replay"
)

// -replay-cache=off reruns the suite without the translation replay
// memoization; figure metrics are byte-identical, only ns/op moves.
// `make bench` records both sides in BENCH_<date>.json.
var replayCacheFlag = flag.String("replay-cache", "on", "translation replay memoization: on | off")

var (
	benchOnce sync.Once
	benchLab  *experiments.Lab
	benchErr  error
)

func lab(b *testing.B) *experiments.Lab {
	b.Helper()
	benchOnce.Do(func() {
		cfg := experiments.Quick()
		cfg.ServerCfg.ReplayCache = *replayCacheFlag != "off"
		benchLab, benchErr = experiments.NewLab(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchLab
}

// reportReplayRate attaches the process-wide replay-cache hit rate to
// a benchmark, so the tracked BENCH_*.json trajectory carries it.
func reportReplayRate(b *testing.B) {
	hits, misses := replay.Totals()
	if total := hits + misses; total > 0 {
		b.ReportMetric(float64(hits)/float64(total)*100, "replay_hit_pct")
	}
}

// BenchmarkFig1CodeSizeOverTime regenerates Figure 1: JITed code size
// over time without Jump-Start, with the A/C/D landmarks.
func BenchmarkFig1CodeSizeOverTime(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Final)/(1<<20), "code_MB")
		b.ReportMetric(res.PointA, "pointA_s")
		b.ReportMetric(res.PointC, "pointC_s")
		b.ReportMetric(res.PointD, "pointD_s")
	}
}

// BenchmarkFig2CapacityLoss regenerates Figure 2: the capacity lost to
// a restart+warmup without Jump-Start.
func BenchmarkFig2CapacityLoss(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CapacityLoss*100, "capacity_loss_pct")
	}
}

// BenchmarkFig4aLatency regenerates Figure 4a: early-warmup latency
// ratio between no-Jump-Start and Jump-Start (paper: ~3×).
func BenchmarkFig4aLatency(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.EarlyLatencyRatio, "early_latency_ratio")
	}
}

// BenchmarkFig4bRPS regenerates Figure 4b and the paper's headline:
// capacity-loss reduction from Jump-Start (paper: 54.9%).
func BenchmarkFig4bRPS(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.JumpStart.CapacityLoss*100, "loss_js_pct")
		b.ReportMetric(res.NoJumpStart.CapacityLoss*100, "loss_nojs_pct")
		b.ReportMetric(res.LossReduction*100, "loss_reduction_pct")
	}
	reportReplayRate(b)
}

// BenchmarkFig5SteadyState regenerates Figure 5: steady-state speedup
// (paper: 5.4%) and micro-architectural miss reductions.
func BenchmarkFig5SteadyState(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SpeedupPct, "speedup_pct")
		b.ReportMetric(res.BranchMR, "branch_mr_pct")
		b.ReportMetric(res.L1IMR, "icache_mr_pct")
		b.ReportMetric(res.ITLBMR, "itlb_mr_pct")
		b.ReportMetric(res.L1DMR, "dcache_mr_pct")
		b.ReportMetric(res.LLCMR, "llc_mr_pct")
	}
	reportReplayRate(b)
}

// BenchmarkFig6Ablations regenerates Figure 6: each Section V
// optimization measured independently over plain Jump-Start.
func BenchmarkFig6Ablations(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.NoJumpStartPct, "no_jumpstart_pct")
		b.ReportMetric(res.BBLayoutPct, "bb_layout_pct")
		b.ReportMetric(res.FuncLayoutPct, "func_layout_pct")
		b.ReportMetric(res.PropReorderPct, "prop_reorder_pct")
	}
}

// BenchmarkLifespanFractions regenerates the Section II-B scalars: the
// fraction of a server's lifespan spent warming (paper: 13% to decent
// performance, 32% to peak).
func BenchmarkLifespanFractions(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.Lifespan()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ToDecent*100, "to_decent_pct")
		b.ReportMetric(res.ToPeak*100, "to_peak_pct")
	}
}

// BenchmarkReliability regenerates the Section VI experiment:
// defective packages crash consumers, randomized re-picks and the
// no-Jump-Start fallback decay the crashes, and the fleet converges.
func BenchmarkReliability(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.Reliability()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Crashes), "crashes")
		b.ReportMetric(float64(res.Fallbacks), "fallbacks")
		b.ReportMetric(res.FinalCap*100, "final_capacity_pct")
	}
}

// BenchmarkFleetDeploy regenerates the fleet-wide C1/C2/C3 deployment
// comparison.
func BenchmarkFleetDeploy(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		lossJS, lossNoJS, err := l.FleetDeploy()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lossJS*100, "fleet_loss_js_pct")
		b.ReportMetric(lossNoJS*100, "fleet_loss_nojs_pct")
	}
}

// BenchmarkFuncSortAblation compares C3, Pettis-Hansen and unsorted
// function placement (the Section V-B design-choice ablation).
func BenchmarkFuncSortAblation(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.FuncSort()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.C3RPS, "c3_rps")
		b.ReportMetric(res.PHRPS, "ph_rps")
		b.ReportMetric(res.NoneRPS, "unsorted_rps")
		b.ReportMetric(res.C3ITLB*100, "c3_itlb_pct")
		b.ReportMetric(res.NoneITLB*100, "unsorted_itlb_pct")
	}
}

// BenchmarkPropLayoutAblation compares declared, hotness (V-C) and
// affinity (V-C future work, implemented as an extension) object
// layouts.
func BenchmarkPropLayoutAblation(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.PropLayout()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DeclaredRPS, "declared_rps")
		b.ReportMetric(res.HotnessRPS, "hotness_rps")
		b.ReportMetric(res.AffinityRPS, "affinity_rps")
		b.ReportMetric(res.DeclaredL1D*100, "declared_l1d_pct")
		b.ReportMetric(res.HotnessL1D*100, "hotness_l1d_pct")
		b.ReportMetric(res.AffinityL1D*100, "affinity_l1d_pct")
	}
}

// BenchmarkBlockLayoutAblation compares Ext-TSP weight sources
// (bytecode-derived vs measured Vasm counters — Section V-A).
func BenchmarkBlockLayoutAblation(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.BlockLayout()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BytecodeRPS, "bytecode_weights_rps")
		b.ReportMetric(res.VasmRPS, "vasm_counters_rps")
		b.ReportMetric(res.BytecodeBranch*100, "bytecode_branch_pct")
		b.ReportMetric(res.VasmBranch*100, "vasm_branch_pct")
	}
}
