GO ?= go

.PHONY: build test bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

# CI gate: vet plus the full suite under the race detector. The
# parallel-vs-sequential determinism tests run here, so this also
# proves byte-identical output at every worker count.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...
