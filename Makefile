GO ?= go

# Coverage floor for the telemetry package: instruments are pure
# bookkeeping, so near-complete coverage is cheap and regressions
# there silently blind every other layer.
TELEMETRY_COVER_FLOOR ?= 80

# Same reasoning for the observability package: span validation and
# changepoint classification are the tools that audit everything else.
OBS_COVER_FLOOR ?= 80

# The scenario engine is pure functions of (region, t) and the
# autotuner is pure search logic — both are cheap to cover completely,
# and holes there silently skew every policy recommendation.
SCENARIO_COVER_FLOOR ?= 80
AUTOTUNE_COVER_FLOOR ?= 80

.PHONY: build test bench alloccheck verify cover faultsweep churnsweep regionsweep obssweep poolsweep scenariosweep

BENCH_DATE ?= $(shell date +%Y-%m-%d)

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Benchmark trajectory: run the figure benchmarks and record every
# metric (ns/op per figure, custom headline metrics, replay-cache hit
# rate) as a dated JSON file. CI uploads it as an artifact; A/B the
# replay cache with:
#   go test -bench=. -benchmem . -replay-cache=off
bench:
	$(GO) test -bench=. -benchmem . > bench.out || { cat bench.out; exit 1; }
	cat bench.out
	$(GO) run ./cmd/benchjson -out BENCH_$(BENCH_DATE).json bench.out

# Allocation regressions: the interpreter hot path must stay at zero
# machinery allocations, the steady-state request path under its
# per-request ceiling, and the store's crash-retry pick path (exclusion
# lists in force) at zero allocations.
alloccheck:
	$(GO) test -count=1 -v -run 'AllocFree|AllocRegression|TestStreamAllocFree' \
		./internal/interp/ ./internal/microarch/ ./internal/server/ \
		./internal/jumpstart/

# CI gate: vet plus the full suite under the race detector. The
# parallel-vs-sequential determinism tests run here, so this also
# proves byte-identical output at every worker count.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

# Fault-injection gate: the store-brownout determinism test, which
# re-runs the faulted fleet at -workers 1, 4, and NumCPU under the
# race detector and requires byte-identical tick series, zero consumer
# crashes, and a recorded reason for every no-Jump-Start boot.
faultsweep:
	$(GO) test -race -count=1 -v -run 'TestFleetBrownoutDeterminism' ./internal/cluster/

# Continuous-deployment gate: the churn determinism test (pushes on a
# cadence, remap-tolerant package carry-over, remapped-boot curves;
# byte-identical at -workers 1, 4 and NumCPU, direct and over the
# networked transport), the store-policy semantics at a push, the
# remapper edge cases, and the mutator's golden revision hashes.
churnsweep:
	$(GO) test -race -count=1 -v -run 'TestFleetChurn' ./internal/cluster/
	$(GO) test -race -count=1 -v -run 'TestRemap' ./internal/prof/
	$(GO) test -race -count=1 -v -run 'TestChain|TestPrinterRoundTrip' ./internal/release/

# Multi-region gate: the sharded-store determinism test (per-region
# shards, 2-way replication, seeder aggregation, long-haul brownout;
# byte-identical at -workers 1, 4 and NumCPU), the replica-failover and
# inter-region-partition fault drills, the consensus vote, the
# multistore unit suite, the profile-aggregation merge rules, and the
# regions experiment's direction checks.
regionsweep:
	$(GO) test -race -count=1 -v -run 'TestFleetRegions|TestFleetReplicaFailover|TestFleetInterRegion|TestConsensusVoting' ./internal/cluster/
	$(GO) test -race -count=1 -v ./internal/jumpstart/multistore/
	$(GO) test -race -count=1 -v -run 'TestAggregate' ./internal/prof/
	$(GO) test -race -count=1 -v -run 'TestRegionsDirections' ./internal/experiments/

# Observability gate: the causal-span determinism test (span traces in
# both export formats byte-identical at -workers 1, 4 and NumCPU, with
# zero simulation perturbation and every tree passing the
# duration-conservation check), the fleet warmup-series classification
# loop, the classifier's golden curve labels, and the span/quantile
# unit suites.
obssweep:
	$(GO) test -race -count=1 -v -run 'TestFleetSpanDeterminism|TestFleetWarmupSeriesClassification' ./internal/cluster/
	$(GO) test -race -count=1 -v ./internal/obs/
	$(GO) test -race -count=1 -v -run 'TestSpan|TestTraceWraparound|TestHistogramQuantile|TestChromeTrace|TestExportSpans' ./internal/telemetry/

# Warm-pool + lazy-paging gate: the pooled + lazy fleet determinism
# test (standby swaps, throttled backfill, crash reboots, and lazy-mode
# boots byte-identical at -workers 1, 4 and NumCPU under the race
# detector), the pool conservation and edge-case suite, the lazy
# consumer's server-level contract, the per-fetch budget and pager
# regression tests, and the pool experiment's direction checks.
poolsweep:
	$(GO) test -race -count=1 -v -run 'TestPool|TestLazyModeUsesLazyCurve|TestWarmupSeriesReanchorsPerPush' ./internal/cluster/
	$(GO) test -race -count=1 -v -run 'TestLazy' ./internal/server/
	$(GO) test -race -count=1 -v -run 'TestFetchChunkFreshBudgetPerCall|TestLazyPager' ./internal/jumpstart/transport/
	$(GO) test -race -count=1 -v -run 'TestPoolFigure' ./internal/experiments/

# Dynamic-traffic gate: the scenario determinism test (diurnal,
# flash-crowd and failover fleets byte-identical at -workers 1, 4 and
# NumCPU under the race detector, with geometry classes and demand
# accounting), the scenario-engine unit suite, the autotuner search
# invariants, and the time-varying traffic modulation tests.
scenariosweep:
	$(GO) test -race -count=1 -v -run 'TestScenario|TestGeometry|TestDiurnal|TestFailover|TestNoScenario' ./internal/cluster/
	$(GO) test -race -count=1 -v ./internal/scenario/
	$(GO) test -race -count=1 -v ./internal/autotune/
	$(GO) test -race -count=1 -v -run 'TestTrafficMixShift|TestTrafficDiffersAcrossRegions' ./internal/workload/

# Coverage gate: reports per-package coverage and enforces the floors
# on internal/telemetry, internal/obs, internal/scenario and
# internal/autotune.
cover:
	$(GO) test -cover ./...
	@check() { \
		pct=$$($(GO) test -cover $$1 | \
			sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage reported for $$1"; exit 1; fi; \
		ok=$$(awk -v p="$$pct" -v f="$$2" 'BEGIN{print (p>=f)?1:0}'); \
		if [ "$$ok" != 1 ]; then \
			echo "cover: $$1 $$pct% < $$2% floor"; exit 1; \
		fi; \
		echo "cover: $$1 $$pct% >= $$2% floor"; \
	}; \
	check ./internal/telemetry/ $(TELEMETRY_COVER_FLOOR) && \
	check ./internal/obs/ $(OBS_COVER_FLOOR) && \
	check ./internal/scenario/ $(SCENARIO_COVER_FLOOR) && \
	check ./internal/autotune/ $(AUTOTUNE_COVER_FLOOR)
