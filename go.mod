module jumpstart

go 1.22
