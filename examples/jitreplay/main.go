// JIT replay: the Section III(4) debugging workflow. A profile-data
// package that triggers a JIT problem can be saved and replayed
// offline: deserialize it, re-run the exact compilation the consumer
// would perform, and inspect every translation — without a server or
// production traffic.
//
// Here we simulate the workflow end to end: collect a package, corrupt
// a copy (the kind of artifact that would be quarantined in
// production), show that the consumer-side decoder rejects it cleanly,
// then replay the good package through the JIT and dump diagnostics
// for the hottest translation.
package main

import (
	"fmt"
	"log"
	"sort"

	"jumpstart/internal/jit"
	"jumpstart/internal/prof"
	"jumpstart/internal/server"
	"jumpstart/internal/vasm"
	"jumpstart/internal/workload"
)

func main() {
	// Collect a package the usual way.
	siteCfg := workload.DefaultSiteConfig()
	siteCfg.Units = 6
	site, err := workload.GenerateSite(siteCfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg := server.DefaultConfig()
	cfg.Mode = server.ModeSeeder
	cfg.ProfileWindow = 3000
	cfg.SeederCollectWindow = 1500
	cfg.JITOpts.InstrumentOptimized = true
	seeder, err := server.New(site, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := seeder.WarmToServing(7200); err != nil {
		log.Fatal(err)
	}
	pkg, _ := seeder.SeederPackage()
	data := pkg.Encode()
	fmt.Printf("collected package: %d bytes\n", len(data))

	// A corrupted package must be rejected, never crash the decoder.
	bad := append([]byte{}, data...)
	bad[len(bad)/3] ^= 0x40
	if _, err := prof.Decode(bad); err != nil {
		fmt.Printf("corrupted copy rejected cleanly: %v\n", err)
	} else {
		log.Fatal("corrupted package accepted!")
	}

	// Replay: decode and re-run the consumer's compilation pipeline
	// under full control.
	replayed, err := prof.Decode(data)
	if err != nil {
		log.Fatal(err)
	}
	opts := jit.DefaultOptions()
	opts.UseVasmCounters = true
	j := jit.New(site.Prog, opts, jit.NewCodeCache(jit.DefaultCacheConfig()))

	type compiled struct {
		name string
		tr   *jit.Translation
	}
	var results []compiled
	for _, name := range replayed.HotFunctions() {
		fn, ok := site.Prog.FuncByName(name)
		if !ok {
			continue
		}
		tr, err := j.CompileOptimized(fn, replayed)
		if err != nil {
			// This is the moment a compiler engineer would set a
			// breakpoint: the exact profile that broke the JIT.
			fmt.Printf("REPRO: %s failed to compile: %v\n", name, err)
			continue
		}
		results = append(results, compiled{name, tr})
	}
	fmt.Printf("replayed optimized compilation of %d functions\n", len(results))

	// Dump diagnostics for the three hottest translations.
	sort.Slice(results, func(i, k int) bool {
		return replayed.Funcs[results[i].name].EntryCount >
			replayed.Funcs[results[k].name].EntryCount
	})
	for i := 0; i < 3 && i < len(results); i++ {
		r := results[i]
		fp := replayed.Funcs[r.name]
		guards := 0
		for b := range r.tr.CFG.Blocks {
			if r.tr.CFG.Blocks[b].Kind == vasm.KindGuardExit {
				guards++
			}
		}
		fmt.Printf("\n%s (entries=%d, checksum=%x)\n", r.name, fp.EntryCount, fp.Checksum)
		fmt.Printf("  vasm blocks=%d (guards=%d) inlines=%d specialized=%d devirt=%d\n",
			len(r.tr.CFG.Blocks), guards, len(r.tr.Inlines),
			len(r.tr.SpecTypes), len(r.tr.Devirt))
		fmt.Printf("  layout: hot %dB + cold %dB, %d/%d blocks hot\n",
			r.tr.HotSize, r.tr.ColdSize, r.tr.HotCount, len(r.tr.Order))
		if len(fp.VasmCounts) > 0 {
			var mx uint64
			for _, c := range fp.VasmCounts {
				if c > mx {
					mx = c
				}
			}
			fmt.Printf("  measured vasm counters: %d blocks, max count %d\n",
				len(fp.VasmCounts), mx)
		}
	}
}
