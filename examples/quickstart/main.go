// Quickstart: compile a MiniHack program, run it through the VM, and
// walk the same code through all three JIT tiers — interpreter,
// profiling translation, and profile-guided optimized translation —
// printing the cycle cost of each (the mechanism behind the paper's
// entire warmup story).
package main

import (
	"fmt"
	"log"
	"os"

	"jumpstart/internal/core"
	"jumpstart/internal/hackc"
	"jumpstart/internal/interp"
	"jumpstart/internal/jit"
	"jumpstart/internal/object"
	"jumpstart/internal/prof"
	"jumpstart/internal/value"
)

const src = `
class Account {
  prop id = 0;
  prop flags = 0;
  prop notes = "";
  prop balance = 0;
  fun __construct(id) { this->id = id; }
  fun deposit(x) { this->balance += x; return this->balance; }
}

fun checksum(n) {
  t = 0;
  for (i = 1; i <= n; i += 1) { t = (t * 31 + i) % 1000003; }
  return t;
}

fun main(n) {
  acct = new Account(42);
  total = 0;
  for (i = 0; i < n; i += 1) {
    total += acct->deposit(i) + checksum(i % 50);
  }
  print("account ", acct->id, " balance ", acct->balance);
  return total;
}`

func main() {
	// 1. The one-call API: compile and run.
	vm, err := core.NewVM(map[string]string{"demo.mh": src}, []string{"demo.mh"}, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	result, err := vm.Call("main", value.Int(200))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("main(200) = %s\n\n", result.String())

	// 2. The same program through the JIT tiers, with cycle accounting.
	prog, err := hackc.CompileSources(map[string]string{"demo.mh": src}, []string{"demo.mh"},
		hackc.Options{Optimize: true})
	if err != nil {
		log.Fatal(err)
	}
	reg, err := object.NewRegistry(prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	ip := interp.New(prog, reg, interp.Config{})
	j := jit.New(prog, jit.DefaultOptions(), jit.NewCodeCache(jit.DefaultCacheConfig()))
	rt := jit.NewRuntime(j, nil)

	cost := func(label string) {
		ip.SetTracer(rt)
		rt.BeginRequest(false)
		if _, err := ip.CallByName("main", value.Int(200)); err != nil {
			log.Fatal(err)
		}
		ip.SetTracer(nil)
		fmt.Printf("%-28s %10d cycles\n", label, rt.TakeCycles())
	}

	cost("tier 0 (interpreter)")

	// Tier 1: profiling translations, instrumented.
	col := prof.NewCollector(prog)
	for _, fn := range prog.Funcs {
		if _, err := j.CompileProfiling(fn); err != nil {
			log.Fatal(err)
		}
	}
	ip.SetTracer(interp.MultiTracer{col, rt})
	col.BeginRequest()
	rt.BeginRequest(false)
	if _, err := ip.CallByName("main", value.Int(200)); err != nil {
		log.Fatal(err)
	}
	ip.SetTracer(nil)
	fmt.Printf("%-28s %10d cycles\n", "tier 1 (profiling)", rt.TakeCycles())

	// Tier 2: optimized from the collected profile.
	p := col.Snapshot(prof.Meta{Revision: 1})
	trans := map[string]*jit.Translation{}
	for _, name := range p.HotFunctions() {
		fn, _ := prog.FuncByName(name)
		tr, err := j.CompileOptimized(fn, p)
		if err != nil {
			log.Fatal(err)
		}
		trans[name] = tr
	}
	if err := j.RelocateOptimized(trans, j.FunctionOrder(p, p.HotFunctions())); err != nil {
		log.Fatal(err)
	}
	cost("tier 2 (optimized)")

	// Show what the optimizer did to the hot method.
	fn, _ := prog.FuncByName("Account::deposit")
	tr := j.Active(fn.ID)
	fmt.Printf("\nAccount::deposit optimized: %d vasm blocks, %d specialized sites, hot %dB / cold %dB\n",
		len(tr.CFG.Blocks), len(tr.SpecTypes), tr.HotSize, tr.ColdSize)
}
