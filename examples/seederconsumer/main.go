// Seeder/consumer: the complete Jump-Start cycle on one machine —
// calibrate the load to the site, run a seeder server (Figure 3b),
// serialize its profile-data package, validate it (Section VI-A1),
// then boot a consumer from it (Figure 3c) and compare warmup against
// a server without Jump-Start.
package main

import (
	"fmt"
	"log"

	"jumpstart/internal/core"
	"jumpstart/internal/jumpstart"
	"jumpstart/internal/prof"
	"jumpstart/internal/server"
	"jumpstart/internal/workload"
)

func main() {
	siteCfg := workload.DefaultSiteConfig()
	siteCfg.Units = 8
	sc, err := core.NewScenario(siteCfg, server.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("site: %d functions, %d classes, %d endpoints\n",
		len(sc.Site.Prog.Funcs), len(sc.Site.Prog.Classes), len(sc.Site.Endpoints))

	// Calibrate the offered load to this site (the paper's servers
	// take "typical production load": saturated while warming, barely
	// not when warm).
	capacity, err := sc.Calibrate(0.95, 600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated: warm capacity %.0f RPS, offered %.0f RPS, profile window %d\n",
		capacity, sc.ServerCfg.OfferedRPS, sc.ServerCfg.ProfileWindow)

	// --- Seeder phase (the paper's C2 servers).
	pkg, err := sc.SeedPackage()
	if err != nil {
		log.Fatal(err)
	}
	data := pkg.Encode()
	cov := pkg.Coverage()
	fmt.Printf("seeder package: %d bytes, %d funcs, %d hot blocks, %d units preload, %d call pairs\n",
		len(data), cov.Funcs, cov.Blocks, len(pkg.Units), len(pkg.CallPairs))

	// --- Validation before publishing (Section VI-A1).
	store := jumpstart.NewStore()
	validator := &jumpstart.Validator{
		Site:           sc.Site,
		ConsumerConfig: sc.ServerCfg,
		Requests:       400,
		MaxFaultRate:   0.01,
		Thresholds:     prof.Thresholds{MinFuncs: 20, MinBlocks: 50, MinRequests: 500},
	}
	if err := validator.Validate(data); err != nil {
		log.Fatalf("validation failed: %v", err)
	}
	id := store.Publish(0, 0, data)
	fmt.Printf("validated and published as package %d; %s\n", id, store)

	// --- Consumer boot with randomized selection + fallback.
	srv, info, err := jumpstart.BootConsumer(sc.Site, store, jumpstart.BootConfig{Server: fullJS(sc.ServerCfg)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consumer boot: jumpstart=%v package=%d attempts=%d\n",
		info.UsedJumpStart, info.PackageID, info.Attempts)

	// --- Warmup comparison over 10 minutes of virtual time.
	consTicks := srv.Run(600)
	noJS, err := sc.ServerFor(core.Variant{}, nil)
	if err != nil {
		log.Fatal(err)
	}
	noTicks := noJS.Run(600)

	steady := sc.ServerCfg.OfferedRPS
	lossJS := server.CapacityLoss(consTicks, steady)
	lossNo := server.CapacityLoss(noTicks, steady)
	fmt.Printf("\nwarmup capacity loss over 600s:\n")
	fmt.Printf("  with Jump-Start:    %5.1f%%\n", lossJS*100)
	fmt.Printf("  without Jump-Start: %5.1f%%\n", lossNo*100)
	if lossNo > 0 {
		fmt.Printf("  reduction:          %5.1f%%  (paper: 54.9%%)\n", (1-lossJS/lossNo)*100)
	}
}

// fullJS enables every Jump-Start optimization on the consumer config
// (BootConsumer manages Mode and Package itself).
func fullJS(cfg server.Config) server.Config {
	cfg.JITOpts.UseVasmCounters = true
	cfg.JITOpts.UseSeededCallGraph = true
	cfg.UsePropertyOrder = true
	return cfg
}
