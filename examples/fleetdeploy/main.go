// Fleet deploy: a continuous-deployment push across a simulated fleet
// with the C1/C2/C3 phases, including a reliability injection — a
// fraction of seeder packages are crash-inducing, and the Section VI
// protections (validation, randomized selection, automatic fallback)
// keep the site up while crashes decay away.
package main

import (
	"fmt"
	"log"

	"jumpstart/internal/cluster"
)

func main() {
	// Warmup curves shaped like the paper's Figure 4b (these can also
	// be measured from the detailed server simulation; see
	// cmd/fleetsim for that flow).
	jsCurve := cluster.WarmupCurve{
		Times:  []float64{0, 30, 60, 100, 150},
		Values: []float64{0.3, 0.6, 0.85, 0.95, 1.0},
	}
	noCurve := cluster.WarmupCurve{
		Times:  []float64{0, 60, 150, 300, 450, 600},
		Values: []float64{0.05, 0.2, 0.45, 0.7, 0.9, 1.0},
	}

	cfg := cluster.DefaultConfig()
	cfg.CurveJumpStart = jsCurve
	cfg.CurveNoJumpStart = noCurve
	cfg.DefectRate = 0.4          // 40% of packages are bad...
	cfg.ValidationCatchRate = 0.8 // ...validation stops most of them
	cfg.CrashDelay = 45
	fleet, err := cluster.NewFleet(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d servers across %d regions x %d semantic buckets\n",
		fleet.Servers(), cfg.Regions, cfg.Buckets)

	fleet.StartDeployment()
	ticks := fleet.Run(2400)

	fmt.Println("\nt_sec  capacity  down  warming  phase  pkgs  crashes  fallbacks")
	for i, tk := range ticks {
		if i%12 == 0 || (i > 0 && tk.Crashes != ticks[i-1].Crashes) {
			fmt.Printf("%5.0f  %8.3f  %4d  %7d  %5d  %4d  %7d  %9d\n",
				tk.T, tk.Capacity, tk.Down, tk.Warming, tk.Phase,
				tk.PkgsAvail, tk.Crashes, tk.Fallbacks)
		}
	}
	loss := cluster.CapacityLoss(ticks, cfg.TickSeconds)
	fmt.Printf("\npush complete: capacity loss %.2f%%, %d crashes (all recovered), %d fallback boots\n",
		loss*100, fleet.Crashes(), fleet.Fallbacks())
	final := ticks[len(ticks)-1]
	fmt.Printf("final fleet capacity: %.1f%%\n", final.Capacity*100)

	// Compare against a push with Jump-Start disabled fleet-wide.
	cfg2 := cfg
	cfg2.JumpStartEnabled = false
	cfg2.DefectRate = 0
	fleet2, err := cluster.NewFleet(cfg2)
	if err != nil {
		log.Fatal(err)
	}
	fleet2.StartDeployment()
	ticks2 := fleet2.Run(2400)
	loss2 := cluster.CapacityLoss(ticks2, cfg.TickSeconds)
	fmt.Printf("\nwithout Jump-Start the same push loses %.2f%% capacity (%.1fx more)\n",
		loss2*100, loss2/loss)
}
